// Command pvdistrict runs the district pipeline end to end: one DSM
// tile in, a ranked floorplan for every detected roof out. It extracts
// candidate roofs automatically (height thresholding, connected
// components, planar fitting), derives a planning scenario per roof,
// fans them through the concurrent batch engine and prints a ranked
// district report.
//
// Usage:
//
//	pvdistrict -tile neighborhood.asc        # sweep a real/exported tile
//	pvdistrict -demo                         # built-in synthetic block
//	pvdistrict -tile t.asc -json             # machine-readable report
//	pvdistrict -tile t.asc -cache ~/.pvcache # warm re-runs skip the physics
//	pvdistrict -tile t.asc -opt multistart -n 16
//	pvdistrict -tile t.asc -minheight 3 -minarea 100 -keepborder
//
// City-scale grids (too large to hold in memory) stream through the
// out-of-core tiled pipeline instead — the DSM file (plain or
// gzipped .asc) is indexed once, work tiles are materialised through
// a bounded block cache, and peak memory stays O(tile + halo)
// regardless of city size:
//
//	pvdistrict -city -tile city.asc.gz                # defaults: 512-cell tiles
//	pvdistrict -city -tile city.asc -tile-size 256 -mem-budget 128
//	pvdistrict -city -tile city.asc -tile-workers 4   # overlap IO and planning
//
// City runs can be made crash-safe and fault-tolerant: -checkpoint
// commits every finished tile durably (a killed run re-invoked with
// the same directory resumes from its last finished tile and stitches
// a byte-identical report), and -tile-retries/-tile-timeout/
// -retry-backoff retry failed tiles with capped exponential backoff
// before recording them as failed while the rest of the city
// completes:
//
//	pvdistrict -city -tile city.asc -checkpoint run1.ckpt -tile-retries 2
//
// Economics-aware fleet ranking prices every planned roof (capex,
// NPV, payback, LCOE over a panel catalog) and can re-rank the fleet
// by economic value or admit roofs greedily against a capital budget:
//
//	pvdistrict -demo -econ                         # price roofs, keep energy ranking
//	pvdistrict -demo -rank-by npv                  # rank by net present value
//	pvdistrict -demo -rank-by npv -budget 50000    # best roofs for $50k
//	pvdistrict -demo -panel-catalog mono-165:165:150,mono-400:400:360
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	pvfloor "repro"
	"repro/internal/district"
	"repro/internal/dsm"
	"repro/internal/geom"
	"repro/internal/gis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pvdistrict: ")
	tilePath := flag.String("tile", "", "ESRI ASCII grid DSM tile to sweep")
	demo := flag.Bool("demo", false, "use the built-in synthetic neighborhood tile instead of -tile")
	asJSON := flag.Bool("json", false, "emit the district report as JSON")
	full := flag.Bool("full", false, "full fidelity (15-minute full year) — minutes per roof")
	modules := flag.Int("n", 0, "fixed module count per roof (0 = auto-size from each roof's area)")
	maxModules := flag.Int("maxn", 32, "auto-size cap on modules per roof")
	optName := flag.String("opt", "greedy", "optimizer strategy: greedy, anneal, multistart, bnb")
	seed := flag.Int64("seed", 1, "random seed for the stochastic strategies")
	restarts := flag.Int("restarts", 0, "multistart restart count K (0 = default 8)")
	runs := flag.Int("runs", 0, "concurrent roof runs (0 = one per CPU)")
	workers := flag.Int("workers", 0, "solar-field workers per roof (0 = one per CPU)")
	cacheDir := flag.String("cache", "", "persistent field-artifact cache directory")
	perRoofHorizon := flag.Bool("per-roof-horizon", false, "disable the shared tile horizon and ray-march one map per roof (debug/compare)")
	noBaseline := flag.Bool("nobaseline", false, "skip the compact baseline placements")
	minHeight := flag.Float64("minheight", 0, "extraction: min height above ground in metres (0 = default 2.5)")
	minArea := flag.Int("minarea", 0, "extraction: min roof footprint in cells (0 = default 60)")
	minRect := flag.Float64("minrect", 0, "extraction: min footprint rectangularity (0 = default 0.55)")
	maxRMS := flag.Float64("maxrms", 0, "extraction: max plane-fit RMS in metres (0 = default 0.35)")
	keepBorder := flag.Bool("keepborder", false, "extraction: keep roofs touching the tile border")
	maxRoofs := flag.Int("maxroofs", 0, "extraction: cap on extracted roofs, largest first (0 = no cap)")
	margin := flag.Int("margin", 0, "extraction: suitable-area erosion margin in cells")
	city := flag.Bool("city", false, "out-of-core tiled sweep: window the DSM instead of loading it whole")
	tileSize := flag.Int("tile-size", 0, "city: core work-tile edge in cells (0 = default 512)")
	halo := flag.Int("halo", 0, "city: overlap margin in cells (0 = derive from the horizon's shadow reach, negative = none)")
	memBudget := flag.Int("mem-budget", 0, "city: windowed-reader block cache budget in MiB (0 = default 64)")
	tileWorkers := flag.Int("tile-workers", 0, "city: concurrent work tiles (0 = sequential, the bounded-memory default)")
	checkpoint := flag.String("checkpoint", "", "city: checkpoint directory — finished tiles are committed there and a re-run resumes from them")
	tileRetries := flag.Int("tile-retries", 0, "city: extra attempts per failed tile before it is recorded as failed")
	tileTimeout := flag.Duration("tile-timeout", 0, "city: per-tile attempt timeout (0 = unbounded)")
	retryBackoff := flag.Duration("retry-backoff", 0, "city: delay before the first tile retry, doubling per attempt (0 = 50ms)")
	econOn := flag.Bool("econ", false, "price every planned roof (capex, NPV, payback, LCOE) and report fleet economics")
	budget := flag.Float64("budget", 0, "econ: fleet capital budget in USD — admit roofs greedily by NPV per dollar (0 = unbounded, implies -econ)")
	panelCatalog := flag.String("panel-catalog", "", "econ: comma-separated panel classes name:wattsSTC[:moduleUSD] (default mono-165:165:150,mono-330:330:290; implies -econ)")
	rankBy := flag.String("rank-by", "", "econ: ranking objective energy|npv|payback (default energy; implies -econ)")
	flag.Parse()

	strat, err := pvfloor.ParseStrategy(*optName)
	if err != nil {
		log.Fatal(err)
	}
	econCfg, err := econConfig(*econOn, *budget, *panelCatalog, *rankBy)
	if err != nil {
		log.Fatal(err)
	}
	fid := pvfloor.Fast
	if *full {
		fid = pvfloor.Full
	}
	if *city {
		runCity(cityFlags{
			tilePath: *tilePath, demo: *demo, asJSON: *asJSON,
			tileSize: *tileSize, halo: *halo, memBudgetMiB: *memBudget, tileWorkers: *tileWorkers,
			checkpoint: *checkpoint,
			cfg: pvfloor.CityConfig{
				TileRetries: *tileRetries,
				TileTimeout: *tileTimeout,
				Backoff:     *retryBackoff,
				Extract: district.Options{
					MinHeightM:          *minHeight,
					MinAreaCells:        *minArea,
					MinRectangularity:   *minRect,
					MaxFitRMSM:          *maxRMS,
					KeepBorder:          *keepBorder,
					MaxRoofs:            *maxRoofs,
					SuitableMarginCells: *margin,
				},
				Modules:        *modules,
				MaxModules:     *maxModules,
				Fidelity:       fid,
				SkipBaseline:   *noBaseline,
				Economics:      econCfg,
				CacheDir:       *cacheDir,
				PerRoofHorizon: *perRoofHorizon,
				Concurrency:    *runs,
				FieldWorkers:   *workers,
				Optimizer: pvfloor.OptimizerConfig{
					Strategy: strat,
					Seed:     *seed,
					Restarts: *restarts,
				},
			},
		})
		return
	}

	tile, nodata, err := loadTile(*tilePath, *demo)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pvfloor.DistrictConfig{
		Tile:   tile,
		NoData: nodata,
		Extract: district.Options{
			MinHeightM:          *minHeight,
			MinAreaCells:        *minArea,
			MinRectangularity:   *minRect,
			MaxFitRMSM:          *maxRMS,
			KeepBorder:          *keepBorder,
			MaxRoofs:            *maxRoofs,
			SuitableMarginCells: *margin,
		},
		Modules:        *modules,
		MaxModules:     *maxModules,
		Fidelity:       fid,
		SkipBaseline:   *noBaseline,
		Economics:      econCfg,
		CacheDir:       *cacheDir,
		PerRoofHorizon: *perRoofHorizon,
		Concurrency:    *runs,
		FieldWorkers:   *workers,
		Optimizer: pvfloor.OptimizerConfig{
			Strategy: strat,
			Seed:     *seed,
			Restarts: *restarts,
		},
	}

	start := time.Now()
	res, err := pvfloor.RunDistrict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *asJSON {
		if err := emitJSON(res); err != nil {
			log.Fatal(err)
		}
	} else {
		emitText(res, elapsed)
	}
	for i := range res.Plans {
		if rp := &res.Plans[i]; rp.Skipped == "" && rp.Run.Err != nil {
			os.Exit(1)
		}
	}
}

// cityFlags bundles the out-of-core run's command-line surface.
type cityFlags struct {
	tilePath     string
	demo         bool
	asJSON       bool
	tileSize     int
	halo         int
	memBudgetMiB int
	tileWorkers  int
	checkpoint   string
	cfg          pvfloor.CityConfig
}

// runCity executes the out-of-core tiled sweep: the DSM file is
// indexed (never loaded whole) and served window by window through a
// bounded block cache.
func runCity(cf cityFlags) {
	var stats func() gis.CacheStats
	switch {
	case cf.demo && cf.tilePath != "":
		log.Fatal("-tile and -demo are mutually exclusive")
	case cf.demo:
		cf.cfg.Source = &gis.RasterSource{Raster: district.SyntheticNeighborhood()}
	case cf.tilePath == "":
		log.Fatal("either -tile or -demo is required")
	default:
		wr, err := gis.OpenWindowed(cf.tilePath, gis.WindowOptions{
			CacheBytes: int64(cf.memBudgetMiB) << 20,
		})
		if err != nil {
			log.Fatalf("indexing %s: %v", cf.tilePath, err)
		}
		defer wr.Close()
		cf.cfg.Source = wr
		stats = wr.Stats
	}
	cf.cfg.TileCells = cf.tileSize
	cf.cfg.HaloCells = cf.halo
	cf.cfg.TileWorkers = cf.tileWorkers
	if cf.checkpoint != "" {
		ck, err := pvfloor.NewDirCheckpoint(cf.checkpoint)
		if err != nil {
			log.Fatal(err)
		}
		cf.cfg.Checkpoint = ck
	}

	start := time.Now()
	res, err := pvfloor.RunCity(cf.cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if cf.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pvfloor.NewCityReport(res)); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(pvfloor.CityTable(res))
		if stats != nil {
			s := stats()
			fmt.Printf("raster cache: %d hits, %d misses, %d evictions\n", s.Hits, s.Misses, s.Evictions)
		}
		fmt.Printf("%d roofs in %v\n", len(res.Plans), elapsed.Round(time.Millisecond))
	}
	for i := range res.Plans {
		if cp := &res.Plans[i]; cp.Skipped == "" && cp.Run.Err != nil {
			os.Exit(1)
		}
	}
}

// econConfig assembles the economics pass from its flag surface. Any
// of -budget, -panel-catalog or -rank-by implies -econ so the common
// invocations stay short.
func econConfig(on bool, budget float64, catalogSpec, rankBy string) (pvfloor.EconConfig, error) {
	ec := pvfloor.EconConfig{
		Enabled:   on || budget != 0 || catalogSpec != "" || rankBy != "",
		BudgetUSD: budget,
		RankBy:    pvfloor.RankBy(rankBy),
	}
	if !ec.Enabled {
		return pvfloor.EconConfig{}, nil
	}
	if catalogSpec != "" {
		catalog, err := parsePanelCatalog(catalogSpec)
		if err != nil {
			return pvfloor.EconConfig{}, err
		}
		ec.Catalog = catalog
	}
	if err := ec.Validate(); err != nil {
		return pvfloor.EconConfig{}, err
	}
	return ec, nil
}

// parsePanelCatalog parses the -panel-catalog flag: comma-separated
// name:wattsSTC[:moduleUSD] entries, e.g. "mono-165:165:150,bifacial-400:400".
func parsePanelCatalog(spec string) ([]pvfloor.PanelClass, error) {
	var catalog []pvfloor.PanelClass
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("panel class %q: want name:wattsSTC[:moduleUSD]", entry)
		}
		pc := pvfloor.PanelClass{Name: strings.TrimSpace(parts[0])}
		w, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("panel class %q: watts: %w", entry, err)
		}
		pc.WattsSTC = w
		if len(parts) == 3 {
			usd, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("panel class %q: price: %w", entry, err)
			}
			pc.ModuleUSD = usd
		}
		catalog = append(catalog, pc)
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("panel catalog %q is empty", spec)
	}
	return catalog, nil
}

func loadTile(path string, demo bool) (*dsm.Raster, *geom.Mask, error) {
	switch {
	case demo && path != "":
		return nil, nil, fmt.Errorf("-tile and -demo are mutually exclusive")
	case demo:
		return district.SyntheticNeighborhood(), nil, nil
	case path == "":
		return nil, nil, fmt.Errorf("either -tile or -demo is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	tile, nodata, err := gis.LoadRaster(f)
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return tile, nodata, nil
}

func emitText(res *pvfloor.DistrictResult, elapsed time.Duration) {
	ex := res.Extraction
	fmt.Printf("tile: %d roofs extracted (ground z %.2f m, %d elevated cells, %d candidate regions dropped)\n",
		len(ex.Roofs), ex.GroundZ, ex.ElevatedCells, len(ex.Dropped))
	for _, d := range ex.Dropped {
		fmt.Printf("  dropped %v (%d cells): %s\n", d.Rect, d.Cells, d.Reason)
	}
	fmt.Println()
	fmt.Print(pvfloor.DistrictTable(res))
	fmt.Printf("%d roofs in %v\n", len(res.Plans), elapsed.Round(time.Millisecond))
}

// emitJSON prints the shared machine-readable district report — the
// same pvfloor.DistrictReport struct the pvserve streaming endpoint
// emits, so the two surfaces stay byte-equivalent.
func emitJSON(res *pvfloor.DistrictResult) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(pvfloor.NewDistrictReport(res))
}
