// Command pvbatch plans many scenario/configuration variants in one
// invocation — the batch front-end of the library. It builds the cross
// product of the requested roofs, module counts and optimizer
// strategies, fans the runs out on the concurrent batch engine
// (sharing one solar field per roof), and prints per-run results plus
// a Table-I-style summary.
//
// Usage:
//
//	pvbatch                          # all Table I roofs, N=16 and 32
//	pvbatch -roofs all,residential   # include the home rooftop
//	pvbatch -roofs 2 -n 8,16,24,32   # module-count sweep on Roof 2
//	pvbatch -opt greedy,anneal,multistart
//	                                 # optimizer-strategy sweep
//	pvbatch -full -runs 2            # paper fidelity, 2 runs at a time
//	pvbatch -json                    # machine-readable per-run output
//	pvbatch -cache ~/.pvcache        # reuse horizon maps + statistics
//	                                 # across invocations (bit-identical)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	pvfloor "repro"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pvbatch: ")
	roofs := flag.String("roofs", "all", "comma list of scenarios: all, 1, 2, 3, residential")
	counts := flag.String("n", "16,32", "comma list of module counts (multiples of 8)")
	full := flag.Bool("full", false, "full fidelity (15-minute full year) — minutes per roof")
	runs := flag.Int("runs", 0, "concurrent runs (0 = one per CPU)")
	workers := flag.Int("workers", 0, "solar-field workers per shared field (0 = one per CPU, 1 = serial)")
	noBaseline := flag.Bool("nobaseline", false, "skip the compact baseline placement")
	asJSON := flag.Bool("json", false, "emit per-run results as JSON instead of text")
	optNames := flag.String("opt", "greedy", "comma list of optimizer strategies: greedy, anneal, multistart, bnb")
	seed := flag.Int64("seed", 1, "random seed for the stochastic strategies")
	restarts := flag.Int("restarts", 0, "multistart restart count K (0 = default 8)")
	cacheDir := flag.String("cache", "", "persistent field-artifact cache directory (horizon maps + statistics reused across invocations)")
	flag.Parse()

	scs, err := pickScenarios(*roofs)
	if err != nil {
		log.Fatal(err)
	}
	ns, err := parseCounts(*counts)
	if err != nil {
		log.Fatal(err)
	}
	strategies, err := parseStrategies(*optNames)
	if err != nil {
		log.Fatal(err)
	}

	fid := pvfloor.Fast
	if *full {
		fid = pvfloor.Full
	}
	var cfgs []pvfloor.Config
	for _, sc := range scs {
		for _, n := range ns {
			for _, strat := range strategies {
				cfgs = append(cfgs, pvfloor.Config{
					Scenario:     sc,
					Modules:      n,
					Fidelity:     fid,
					SkipBaseline: *noBaseline,
					CacheDir:     *cacheDir,
					Optimizer: pvfloor.OptimizerConfig{
						Strategy: strat,
						Seed:     *seed,
						Restarts: *restarts,
					},
				})
			}
		}
	}

	start := time.Now()
	results, err := pvfloor.RunBatch(cfgs, pvfloor.BatchOptions{
		Concurrency:  *runs,
		FieldWorkers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *asJSON {
		if err := emitJSON(results); err != nil {
			log.Fatal(err)
		}
	} else {
		emitText(results, elapsed)
	}
	for _, br := range results {
		if br.Err != nil {
			os.Exit(1)
		}
	}
}

func pickScenarios(spec string) ([]*scenario.Scenario, error) {
	var out []*scenario.Scenario
	seen := map[string]bool{}
	add := func(sc *scenario.Scenario, err error) error {
		if err != nil {
			return err
		}
		if !seen[sc.Name] {
			seen[sc.Name] = true
			out = append(out, sc)
		}
		return nil
	}
	for _, tok := range strings.Split(spec, ",") {
		switch strings.TrimSpace(tok) {
		case "all":
			scs, err := pvfloor.AllRoofs()
			if err != nil {
				return nil, err
			}
			for _, sc := range scs {
				if err := add(sc, nil); err != nil {
					return nil, err
				}
			}
		case "1":
			if err := add(pvfloor.Roof1()); err != nil {
				return nil, err
			}
		case "2":
			if err := add(pvfloor.Roof2()); err != nil {
				return nil, err
			}
		case "3":
			if err := add(pvfloor.Roof3()); err != nil {
				return nil, err
			}
		case "residential", "res":
			if err := add(pvfloor.Residential()); err != nil {
				return nil, err
			}
		case "":
		default:
			return nil, fmt.Errorf("unknown scenario %q (want all, 1, 2, 3 or residential)", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	return out, nil
}

func parseCounts(spec string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad module count %q: %w", tok, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no module counts given")
	}
	return out, nil
}

func parseStrategies(spec string) ([]pvfloor.Strategy, error) {
	var out []pvfloor.Strategy
	seen := map[pvfloor.Strategy]bool{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		s, err := pvfloor.ParseStrategy(tok)
		if err != nil {
			return nil, err
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no optimizer strategies given")
	}
	return out, nil
}

func emitText(results []pvfloor.BatchRun, elapsed time.Duration) {
	for _, br := range results {
		if br.Err != nil {
			fmt.Printf("%-24s FAILED  %v\n", br.Name, br.Err)
			continue
		}
		built := ""
		if br.FieldBuilt {
			built = "  [built field]"
		}
		fmt.Printf("%-24s %8.1f ms  proposed %.3f MWh  gain %+.2f%%%s\n",
			br.Name, float64(br.Elapsed.Microseconds())/1000,
			br.Result.ProposedEval.NetMWh(), br.Result.ImprovementPct(), built)
	}
	fmt.Println()
	fmt.Print(pvfloor.BatchTableI(results))
	fmt.Printf("\n%d runs in %v\n", len(results), elapsed.Round(time.Millisecond))
}

// runJSON is the machine-readable shape of one batch run.
type runJSON struct {
	Name           string  `json:"name"`
	Roof           string  `json:"roof"`
	Modules        int     `json:"modules"`
	Optimizer      string  `json:"optimizer,omitempty"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	FieldBuilt     bool    `json:"field_built"`
	ProposedMWh    float64 `json:"proposed_mwh,omitempty"`
	TraditionalMWh float64 `json:"traditional_mwh,omitempty"`
	GainPct        float64 `json:"gain_pct,omitempty"`
	WiringExtraM   float64 `json:"wiring_extra_m,omitempty"`
	Error          string  `json:"error,omitempty"`
}

func emitJSON(results []pvfloor.BatchRun) error {
	out := make([]runJSON, 0, len(results))
	for _, br := range results {
		rj := runJSON{
			Name:      br.Name,
			ElapsedMS: float64(br.Elapsed.Microseconds()) / 1000,
		}
		if br.Config.Scenario != nil {
			rj.Roof = br.Config.Scenario.Name
		}
		rj.Modules = br.Config.Modules
		rj.Optimizer = string(br.Config.Optimizer.Strategy)
		rj.FieldBuilt = br.FieldBuilt
		if br.Err != nil {
			rj.Error = br.Err.Error()
		} else {
			rj.ProposedMWh = br.Result.ProposedEval.NetMWh()
			rj.TraditionalMWh = br.Result.TraditionalEval.NetMWh()
			rj.GainPct = br.Result.ImprovementPct()
			rj.WiringExtraM = br.Result.ProposedEval.WiringExtraM
		}
		out = append(out, rj)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
