// Command roofgen exports the built-in synthetic scenarios as ESRI
// ASCII grid DSMs (plus the suitable-area mask as CSV), so they can
// be inspected in QGIS/GRASS alongside real LiDAR data — or serve as
// fixtures for pipelines that expect .asc input. The reverse path
// (loading a real .asc DSM) goes through internal/gis.ReadAsc.
//
//	roofgen -out scenes/            # all scenarios
//	roofgen -roof 1 -out scenes/    # a single roof
//	roofgen -district -out testdata/district
//	                                # the synthetic multi-roof
//	                                # neighborhood tile (the committed
//	                                # district fixture)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	pvfloor "repro"
	"repro/internal/district"
	"repro/internal/dsm"
	"repro/internal/geom"
	"repro/internal/gis"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roofgen: ")
	roof := flag.String("roof", "all", "scenario: 1, 2, 3, residential or all")
	outDir := flag.String("out", "scenes", "output directory")
	districtTile := flag.Bool("district", false, "export the synthetic multi-roof neighborhood tile instead of the paper scenarios")
	flag.Parse()

	if *districtTile {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, d := range []struct {
			name string
			tile *dsm.Raster
		}{
			{"neighborhood", district.SyntheticNeighborhood()},
			{"gabled", district.SyntheticGabledBlock()},
		} {
			path := filepath.Join(*outDir, d.name+".asc")
			if err := writeRaster(path, d.tile); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s: %s (%dx%d cells at %g m)\n",
				d.name, path, d.tile.W(), d.tile.H(), d.tile.CellSize())
		}
		return
	}

	var scs []*scenario.Scenario
	add := func(fn func() (*scenario.Scenario, error)) {
		sc, err := fn()
		if err != nil {
			log.Fatal(err)
		}
		scs = append(scs, sc)
	}
	switch *roof {
	case "1":
		add(pvfloor.Roof1)
	case "2":
		add(pvfloor.Roof2)
	case "3":
		add(pvfloor.Roof3)
	case "residential", "res":
		add(pvfloor.Residential)
	case "all":
		add(pvfloor.Roof1)
		add(pvfloor.Roof2)
		add(pvfloor.Roof3)
		add(pvfloor.Residential)
	default:
		log.Fatalf("unknown scenario %q", *roof)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, sc := range scs {
		base := strings.ReplaceAll(strings.ToLower(sc.Name), " ", "")
		ascPath := filepath.Join(*outDir, base+".asc")
		if err := writeAsc(ascPath, sc); err != nil {
			log.Fatal(err)
		}
		maskPath := filepath.Join(*outDir, base+"-suitable.csv")
		if err := writeMask(maskPath, sc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s (%dx%d cells, Ng=%d), %s\n",
			sc.Name, ascPath, sc.Scene.Raster.W(), sc.Scene.Raster.H(), sc.Ng(), maskPath)
	}
}

func writeAsc(path string, sc *scenario.Scenario) error {
	return writeRaster(path, sc.Scene.Raster)
}

func writeRaster(path string, r *dsm.Raster) error {
	g := gis.FromRaster(r, 0, 0)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	if err := g.WriteAsc(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMask(path string, sc *scenario.Scenario) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	fmt.Fprintln(f, "x,y,suitable")
	for y := 0; y < sc.Suitable.H(); y++ {
		for x := 0; x < sc.Suitable.W(); x++ {
			v := 0
			if sc.Suitable.Get(geom.Cell{X: x, Y: y}) {
				v = 1
			}
			fmt.Fprintf(f, "%d,%d,%d\n", x, y, v)
		}
	}
	return f.Close()
}
