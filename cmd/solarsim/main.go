// Command solarsim runs only the solar-data-extraction stage of the
// pipeline (§IV): it simulates the spatio-temporal irradiance and
// temperature field over a scenario roof and dumps the per-cell
// statistics — the inputs the floorplanner consumes — as a terminal
// heat map and optional PGM/CSV artifacts.
//
//	solarsim -roof 1                 # fast fidelity, ASCII map
//	solarsim -roof 2 -pct 90         # a different percentile
//	solarsim -roof 3 -full -out d/   # paper fidelity, write artifacts
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	pvfloor "repro"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/scenario"
	"repro/internal/solar/field"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solarsim: ")
	roof := flag.String("roof", "2", "scenario: 1, 2, 3 or residential")
	pct := flag.Float64("pct", 75, "irradiance percentile to map")
	full := flag.Bool("full", false, "full fidelity (15-minute full year)")
	outDir := flag.String("out", "", "directory for PGM/CSV artifacts")
	flag.Parse()

	var sc *scenario.Scenario
	var err error
	switch *roof {
	case "1":
		sc, err = pvfloor.Roof1()
	case "2":
		sc, err = pvfloor.Roof2()
	case "3":
		sc, err = pvfloor.Roof3()
	case "residential", "res":
		sc, err = pvfloor.Residential()
	default:
		log.Fatalf("unknown scenario %q", *roof)
	}
	if err != nil {
		log.Fatal(err)
	}

	ev := mustField(sc, *full)
	cs, err := ev.StatsPercentile(*pct)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — solar field statistics (p%.0f over %d samples)\n\n", sc.Name, *pct, cs.Samples)
	gField := render.Field{W: cs.W, H: cs.H, At: func(c geom.Cell) float64 { g, _, _ := cs.At(c); return g }}
	fmt.Printf("p%.0f plane-of-array irradiance (W/m²):\n%s\n", *pct, render.HeatmapASCII(gField, 110))
	tField := render.Field{W: cs.W, H: cs.H, At: func(c geom.Cell) float64 { _, _, t := cs.At(c); return t }}
	fmt.Printf("p%.0f actual module temperature (°C):\n%s\n", *pct, render.HeatmapASCII(tField, 110))

	// Aggregate distribution of the per-cell percentiles.
	var vals []float64
	for y := 0; y < cs.H; y++ {
		for x := 0; x < cs.W; x++ {
			c := geom.Cell{X: x, Y: y}
			if cs.Valid(c) {
				g, _, _ := cs.At(c)
				vals = append(vals, g)
			}
		}
	}
	sum, err := stats.Summarize(vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("across %d valid cells: min %.0f, p25 %.0f, median %.0f, p75 %.0f, max %.0f W/m² (skewness %.2f)\n",
		sum.N, sum.Min, sum.P25, sum.P50, sum.P75, sum.Max, sum.Skewness)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		base := strings.ReplaceAll(strings.ToLower(sc.Name), " ", "")
		writeArtifact(filepath.Join(*outDir, base+"-g.pgm"), func(f *os.File) error {
			return render.HeatmapPGM(f, gField)
		})
		writeArtifact(filepath.Join(*outDir, base+"-g.csv"), func(f *os.File) error {
			return render.FieldCSV(f, gField)
		})
	}
}

func mustField(sc *scenario.Scenario, full bool) *field.Evaluator {
	if full {
		ev, err := sc.Field(scenario.FullYearGrid())
		if err != nil {
			log.Fatal(err)
		}
		return ev
	}
	ev, err := sc.FieldFast(scenario.FastGrid())
	if err != nil {
		log.Fatal(err)
	}
	return ev
}

func writeArtifact(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
