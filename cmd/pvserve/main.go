// Command pvserve is the streaming service front-end of the pvfloor
// engine: a long-lived HTTP process exposing the single-run, batch
// and district pipelines as JSON endpoints, with batch and district
// runs streamed as NDJSON progress events. Repeated tiles and roofs
// are served warm through the shared field-artifact cache, and a
// bounded job pool keeps one large tile from starving the process.
//
// Usage:
//
//	pvserve                                  # listen on :8037
//	pvserve -addr :9000 -cache ~/.pvcache    # warm re-runs skip the physics
//	pvserve -max-runs 4 -queue 16            # job-pool sizing
//	pvserve -concurrency 4 -field-workers 2  # per-request worker caps
//	pvserve -jobs-dir ~/.pvjobs              # durable async city jobs
//	pvserve -tiles-dir ~/.pvtiles            # tile uploads + tile_ref requests
//	pvserve -cache ~/.pvcache -cache-remote http://peer:8037/v1/blobs
//
// With -jobs-dir, city runs can also be submitted as durable async
// jobs (/v1/jobs): each job is journaled and checkpointed tile by
// tile under that directory, survives crashes and graceful restarts,
// and resumes from its last finished tile when the process comes
// back with the same -jobs-dir.
//
// With -tiles-dir, DSM tiles can be uploaded once (POST /v1/tiles,
// plain or gzipped ESRI ASCII grid) and referenced by tile_ref in
// district/city/job requests instead of shipping in every body.
//
// With -cache-remote, the local artifact cache gains a remote tier:
// misses fall through to a peer's /v1/blobs mount and local stores
// publish there, so a fleet shares one warm cache. Any remote failure
// degrades to recompute — it never fails a request.
//
// Endpoints (see internal/serve and the README quickstart):
//
//	GET  /healthz        liveness + pool gauges + store censuses
//	POST /v1/run         one run, synchronous JSON
//	POST /v1/batch       fleet of runs, NDJSON stream
//	POST /v1/district    DSM tile sweep, NDJSON stream
//	POST /v1/city        tiled city sweep, NDJSON stream
//	POST /v1/tiles       upload a DSM tile, returns its tile_ref
//	/v1/blobs/{key}      the artifact cache's blob mount (peer tier)
//	/v1/jobs...          durable async jobs (submit/poll/fetch/cancel)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pvserve: ")
	addr := flag.String("addr", ":8037", "listen address")
	cacheDir := flag.String("cache", "", "persistent field-artifact cache directory shared by all requests")
	cacheRemote := flag.String("cache-remote", "", "peer blob-mount base URL (e.g. http://cache-host:8037/v1/blobs): local misses fall through to it, stores publish to it")
	tilesDir := flag.String("tiles-dir", "", "uploaded-tile store directory: enables POST /v1/tiles and tile_ref requests")
	maxRuns := flag.Int("max-runs", 2, "max concurrently executing requests (the job pool)")
	queue := flag.Int("queue", 8, "max requests waiting for a run slot before 503")
	concurrency := flag.Int("concurrency", 0, "per-request run fan-out (0 = one per CPU)")
	fieldWorkers := flag.Int("field-workers", 0, "solar-field workers per roof (0 = one per CPU)")
	maxBody := flag.Int64("max-body", 16<<20, "request body cap in bytes (district tiles ship in the body)")
	jobsDir := flag.String("jobs-dir", "", "durable job store directory: enables /v1/jobs and crash-safe resume")
	flag.Parse()

	opts := serve.Options{
		MaxConcurrentRuns: *maxRuns,
		QueueDepth:        *queue,
		Concurrency:       *concurrency,
		FieldWorkers:      *fieldWorkers,
		CacheDir:          *cacheDir,
		CacheRemote:       *cacheRemote,
		TilesDir:          *tilesDir,
		MaxBodyBytes:      *maxBody,
	}
	if *jobsDir != "" {
		store, err := jobs.Open(*jobsDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Jobs = store
	}
	app, err := serve.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (max-runs %d, queue %d, cache %q)", *addr, *maxRuns, *queue, *cacheDir)
	if n := app.ResumeJobs(); n > 0 {
		log.Printf("resumed %d parked job(s) from %s", n, *jobsDir)
	}

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Drain background jobs (they checkpoint and park as interrupted)
	// concurrently with the HTTP request drain, sharing one deadline.
	jobErr := make(chan error, 1)
	go func() { jobErr <- app.Shutdown(shutdownCtx) }()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	if err := <-jobErr; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
}
