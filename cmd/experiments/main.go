// Command experiments regenerates every table and figure of the
// paper's evaluation (§V) plus the ablation studies listed in
// DESIGN.md, printing paper-comparable outputs and optionally writing
// figure artifacts (PGM/CSV) to a directory.
//
//	experiments                 # everything, fast fidelity
//	experiments -full           # paper fidelity (full year, 15 min)
//	experiments -only table1    # a single experiment
//	experiments -out artifacts  # also write PGM/CSV figures
//
// Experiments: table1, fig1, fig6, fig7, fig2, fig3, fig4, overhead,
// runtime, ablation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	pvfloor "repro"
	"repro/internal/anneal"
	"repro/internal/floorplan"
	"repro/internal/opt"
	"repro/internal/pvmodel"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/solar/field"
	"repro/internal/wiring"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	full := flag.Bool("full", false, "paper fidelity: 15-minute full-year simulation, fine horizon maps")
	only := flag.String("only", "", "run a single experiment (table1, fig1, fig6, fig7, fig2, fig3, fig4, overhead, runtime, ablation)")
	outDir := flag.String("out", "", "directory for PGM/CSV artifacts")
	flag.Parse()

	fid := pvfloor.Fast
	if *full {
		fid = pvfloor.Full
	}

	run := func(name string, fn func()) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		fmt.Printf("==================== %s ====================\n", strings.ToUpper(name))
		fn()
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	h := newHarness(fid, *outDir)
	run("table1", h.tableI)
	run("fig1", h.fig1)
	run("fig6", h.fig6)
	run("fig7", h.fig7)
	run("fig2", h.fig2)
	run("fig3", h.fig3)
	run("fig4", h.fig4)
	run("overhead", h.overhead)
	run("runtime", h.runtime)
	run("ablation", h.ablation)
}

// harness caches scenarios and runs so the experiments share the
// expensive field constructions.
type harness struct {
	fid    pvfloor.Fidelity
	outDir string
	runs   map[string]*pvfloor.Result // keyed roofName/N
	scs    []*scenario.Scenario
}

func newHarness(fid pvfloor.Fidelity, outDir string) *harness {
	scs, err := scenario.All()
	if err != nil {
		log.Fatal(err)
	}
	return &harness{fid: fid, outDir: outDir, runs: map[string]*pvfloor.Result{}, scs: scs}
}

func (h *harness) fields(sc *scenario.Scenario) *field.Evaluator {
	// Field construction is cached through the first Run per roof.
	key := sc.Name + "/field"
	if r, ok := h.runs[key]; ok {
		return r.Evaluator
	}
	var ev *field.Evaluator
	var err error
	if h.fid == pvfloor.Full {
		ev, err = sc.Field(scenario.FullYearGrid())
	} else {
		ev, err = sc.FieldFast(scenario.FastGrid())
	}
	if err != nil {
		log.Fatal(err)
	}
	h.runs[key] = &pvfloor.Result{Evaluator: ev}
	return ev
}

func (h *harness) result(sc *scenario.Scenario, n int) *pvfloor.Result {
	key := fmt.Sprintf("%s/%d", sc.Name, n)
	if r, ok := h.runs[key]; ok {
		return r
	}
	res, err := pvfloor.RunWithField(pvfloor.Config{Scenario: sc, Modules: n, Fidelity: h.fid}, h.fields(sc))
	if err != nil {
		log.Fatalf("%s N=%d: %v", sc.Name, n, err)
	}
	h.runs[key] = res
	return res
}

// tableI regenerates Table I: roof characteristics and the yearly
// production of traditional vs proposed placements for N in {16,32}.
func (h *harness) tableI() {
	paper := map[string][2][3]float64{ // roof -> [N16, N32] of {trad, prop, pct}
		"Roof 1": {{3.430, 4.094, 19.37}, {6.729, 7.499, 11.44}},
		"Roof 2": {{2.971, 3.619, 21.85}, {5.941, 7.404, 23.63}},
		"Roof 3": {{2.957, 3.642, 23.16}, {5.746, 7.405, 28.86}},
	}
	var rows []report.TableIRow
	for _, sc := range h.scs {
		for _, n := range []int{16, 32} {
			res := h.result(sc, n)
			row := res.TableIRow()
			if n == 32 {
				row.Roof, row.W, row.L, row.Ng = "", 0, 0, 0 // match the paper's row grouping
			}
			rows = append(rows, row)
		}
	}
	fmt.Println(report.FormatTableI(rows))
	fmt.Println("Paper reference (Table I):")
	cmp := report.NewTable("roof", "N", "paper trad", "paper prop", "paper %", "ours %")
	for _, sc := range h.scs {
		for i, n := range []int{16, 32} {
			p := paper[sc.Name][i]
			res := h.result(sc, n)
			cmp.AddRowf("%s|%d|%0.3f|%0.3f|%+0.2f|%+0.2f", sc.Name, n, p[0], p[1], p[2], res.ImprovementPct())
		}
	}
	fmt.Println(cmp)
}

// fig1 prints the conceptual compact-vs-irregular comparison on a
// synthetic surface with bright pockets (the paper's motivation
// figure).
func (h *harness) fig1() {
	const w, ht = 72, 32
	suit := &floorplan.Suitability{W: w, H: ht, S: make([]float64, w*ht)}
	for y := 0; y < ht; y++ {
		for x := 0; x < w; x++ {
			v := 40.0 + 0.4*float64(x)
			if x > 8 && x < 22 && y > 4 && y < 12 {
				v += 45
			}
			if x > 50 && y > 20 {
				v += 40
			}
			suit.S[y*w+x] = v
		}
	}
	mask := geomMask(w, ht)
	opts := floorplan.Options{
		Shape:    floorplan.ModuleShape{W: 8, H: 4},
		Topology: topoOf2(4, 2),
		Policy:   floorplan.PolicyNone, // conceptual figure: reach both pockets
	}
	compact, err := floorplan.PlanCompact(suit, mask, opts)
	if err != nil {
		log.Fatal(err)
	}
	sparse, err := floorplan.Plan(suit, mask, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 1(a) — traditional compact placement:")
	fmt.Println(render.PlacementASCII(mask, compact, 72))
	fmt.Println("Fig. 1(b) — irregular placement:")
	fmt.Println(render.PlacementASCII(mask, sparse, 72))
	fmt.Printf("suitability: compact %.1f, sparse %.1f (%+.1f%%)\n",
		compact.SuitabilitySum, sparse.SuitabilitySum,
		(sparse.SuitabilitySum-compact.SuitabilitySum)/compact.SuitabilitySum*100)
}

// fig6 renders the 75th-percentile irradiance maps of the roofs.
func (h *harness) fig6() {
	for _, sc := range h.scs {
		res := h.result(sc, 16)
		fmt.Printf("%s p75 irradiance distribution (brighter = larger, Fig. 6(b)):\n", sc.Name)
		fmt.Println(res.SuitabilityMap(110))
		h.writeArtifact(fmt.Sprintf("fig6-%s.pgm", slug(sc.Name)), func(w *os.File) error {
			return render.HeatmapPGM(w, render.Field{W: res.Suitability.W, H: res.Suitability.H, At: res.Suitability.At})
		})
		h.writeArtifact(fmt.Sprintf("fig6-%s.csv", slug(sc.Name)), func(w *os.File) error {
			return render.FieldCSV(w, render.Field{W: res.Suitability.W, H: res.Suitability.H, At: res.Suitability.At})
		})
	}
}

// fig7 renders the traditional and proposed N=32 placements.
func (h *harness) fig7() {
	for _, sc := range h.scs {
		res := h.result(sc, 32)
		fmt.Printf("%s traditional placement (Fig. 7 a-c):\n%s\n", sc.Name, res.TraditionalMap(110))
		fmt.Printf("%s proposed placement (Fig. 7 d-f):\n%s\n", sc.Name, res.ProposedMap(110))
	}
}

// fig2 regenerates the cell/module I-V characteristics.
func (h *harness) fig2() {
	dio := pvmodel.PVMF165EB3Diode()
	tb := report.NewTable("G (W/m²)", "T_act (°C)", "Voc (V)", "Isc (A)", "Vmpp (V)", "Impp (A)", "Pmax (W)")
	for _, g := range []float64{200, 600, 1000} {
		for _, tc := range []float64{10, 25, 60} {
			op := dio.MPP(g, tc)
			tb.AddRowf("%5.0f|%5.0f|%6.2f|%6.3f|%6.2f|%6.3f|%6.1f",
				g, tc, dio.Voc(g, tc), dio.Isc(g, tc), op.Voltage, op.Current, op.Power)
		}
	}
	fmt.Println("Fig. 2(a) — single-diode characteristics:")
	fmt.Println(tb)
	h.writeArtifact("fig2-ivcurves.csv", func(w *os.File) error {
		fmt.Fprintln(w, "g,tact,v,i,p")
		for _, g := range []float64{200, 600, 1000} {
			for _, tc := range []float64{10, 25, 60} {
				for _, pt := range dio.IVCurve(g, tc, 60) {
					fmt.Fprintf(w, "%g,%g,%.4f,%.4f,%.4f\n", g, tc, pt.V, pt.I, pt.P)
				}
			}
		}
		return nil
	})
}

// fig3 regenerates the PV-MF165EB3 power characteristics: the
// normalised datasheet dependences the paper's model is fitted from.
func (h *harness) fig3() {
	emp := pvmodel.PVMF165EB3()
	fmt.Println("Fig. 3 — empirical model characteristics (normalised to 1000 W/m², 25 °C):")
	ref := emp.MPP(1000, 25)
	tb := report.NewTable("G (W/m²)", "P/Pref", "V/Vref", "Voc/VocRef")
	for _, g := range []float64{200, 400, 600, 800, 1000} {
		op := emp.MPP(g, 25)
		tb.AddRowf("%5.0f|%6.3f|%6.3f|%6.3f", g, op.Power/ref.Power, op.Voltage/ref.Voltage,
			emp.Voc(g, 25)/emp.Voc(1000, 25))
	}
	fmt.Println(tb)
	tb2 := report.NewTable("T_act (°C)", "P/Pref", "V/Vref")
	for _, tc := range []float64{0, 25, 50, 75} {
		op := emp.MPP(1000, tc)
		tb2.AddRowf("%4.0f|%6.3f|%6.3f", tc, op.Power/ref.Power, op.Voltage/ref.Voltage)
	}
	fmt.Println(tb2)
	fmt.Printf("power swing over G∈[200,1000]: %.1fx (paper: 5x)\n",
		emp.MPP(1000, 25).Power/emp.MPP(200, 25).Power)
}

// fig4 regenerates the wiring-overhead characterisation.
func (h *harness) fig4() {
	spec := wiring.AWG10(scenario.CellSizeM)
	fmt.Println("Fig. 4 — wiring overhead of a displaced module pair (d_h + d_v, metres):")
	tb := report.NewTable("d_h (cells)", "d_v (cells)", "extra cable (m)", "loss @4A (W)")
	shape := floorplan.ModuleShape{W: 8, H: 4}
	for _, d := range []struct{ dh, dv int }{{0, 0}, {5, 0}, {0, 5}, {10, 10}, {25, 10}} {
		a := shape.Rect(geomCell(0, 0))
		b := shape.Rect(geomCell(8+d.dh, d.dv))
		l := spec.ChainOverheadMeters([]geomRect{a, b})
		tb.AddRowf("%3d|%3d|%5.1f|%6.3f", d.dh, d.dv, l, spec.PowerLossW(l, 4))
	}
	fmt.Println(tb)
}

// overhead runs the §V-C assessment on the worst-case placement.
func (h *harness) overhead() {
	spec := wiring.AWG10(scenario.CellSizeM)
	fmt.Println("§V-C overhead assessment (4 A reference, 50% dark time):")
	tb := report.NewTable("roof", "N", "extra cable (m)", "loss (kWh/yr)", "cost ($)", "%/m of production")
	worst := 0.0
	for _, sc := range h.scs {
		for _, n := range []int{16, 32} {
			res := h.result(sc, n)
			a, err := spec.Assess(res.Proposed.Rects, res.Proposed.Topology.SeriesPerString,
				4.0, 0.5, res.ProposedEval.GrossMWh)
			if err != nil {
				log.Fatal(err)
			}
			if a.ExtraCableM > worst {
				worst = a.ExtraCableM
			}
			tb.AddRowf("%s|%d|%0.1f|%0.2f|%0.0f|%0.4f%%",
				sc.Name, n, a.ExtraCableM, a.AnnualLossKWh, a.CostUSD, a.LossFractionPerM*100)
		}
	}
	fmt.Println(tb)
	fmt.Printf("worst-case extra cable: %.1f m (paper: ≈20 m); loss-per-metre bound: 0.05%%/m (paper)\n", worst)
}

// runtime measures placement-algorithm scaling (§V-B: proportional to
// Ng and N, < 120 s at ≈12k cells on the paper's 2017 server).
func (h *harness) runtime() {
	fmt.Println("§V-B runtime scaling of the placement algorithm alone:")
	tb := report.NewTable("roof", "Ng", "N", "greedy (ms)", "compact (ms)")
	for _, sc := range h.scs {
		res := h.result(sc, 16) // reuse stats/suitability
		for _, n := range []int{16, 32} {
			topo, err := scenario.Topology(n)
			if err != nil {
				log.Fatal(err)
			}
			opts := floorplan.Options{Shape: sc.Shape, Topology: topo}
			t0 := time.Now()
			if _, err := floorplan.Plan(res.Suitability, sc.Suitable, opts); err != nil {
				log.Fatal(err)
			}
			tGreedy := time.Since(t0)
			t0 = time.Now()
			if _, err := floorplan.PlanCompact(res.Suitability, sc.Suitable, opts); err != nil {
				log.Fatal(err)
			}
			tCompact := time.Since(t0)
			tb.AddRowf("%s|%d|%d|%0.1f|%0.1f", sc.Name, sc.Ng(), n,
				float64(tGreedy.Microseconds())/1000, float64(tCompact.Microseconds())/1000)
		}
	}
	fmt.Println(tb)
}

// ablation runs A1-A4: suitability percentile, distance policy,
// optimality gap and annealing headroom.
func (h *harness) ablation() {
	sc := h.scs[1] // Roof 2
	ev := h.fields(sc)
	mod := pvmodel.PVMF165EB3()
	spec := wiring.AWG10(scenario.CellSizeM)
	topo, err := scenario.Topology(32)
	if err != nil {
		log.Fatal(err)
	}
	opts := floorplan.Options{Shape: sc.Shape, Topology: topo}

	fmt.Println("A1 — suitability statistic (Roof 2, N=32):")
	tb1 := report.NewTable("statistic", "net MWh", "wiring (m)")
	for _, pct := range []float64{50, 75, 90} {
		cs, err := ev.StatsPercentile(pct)
		if err != nil {
			log.Fatal(err)
		}
		suit, err := floorplan.ComputeSuitability(cs, floorplan.SuitabilityOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pl, err := floorplan.Plan(suit, sc.Suitable, opts)
		if err != nil {
			log.Fatal(err)
		}
		e, err := floorplan.Evaluate(ev, mod, pl, spec)
		if err != nil {
			log.Fatal(err)
		}
		tb1.AddRowf("p%.0f|%0.3f|%0.1f", pct, e.NetMWh(), e.WiringExtraM)
	}
	cs, err := ev.Stats()
	if err != nil {
		log.Fatal(err)
	}
	suitMean, err := floorplan.ComputeSuitability(cs, floorplan.SuitabilityOptions{UseMean: true})
	if err != nil {
		log.Fatal(err)
	}
	plMean, err := floorplan.Plan(suitMean, sc.Suitable, opts)
	if err != nil {
		log.Fatal(err)
	}
	eMean, err := floorplan.Evaluate(ev, mod, plMean, spec)
	if err != nil {
		log.Fatal(err)
	}
	tb1.AddRowf("mean|%0.3f|%0.1f", eMean.NetMWh(), eMean.WiringExtraM)
	fmt.Println(tb1)

	fmt.Println("A2 — distance policy / tie band (Roof 2, N=32):")
	suit, err := floorplan.ComputeSuitability(cs, floorplan.SuitabilityOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tb2 := report.NewTable("policy", "tie eps", "net MWh", "wiring (m)")
	for _, pol := range []floorplan.DistancePolicy{floorplan.PolicyChain, floorplan.PolicyCentroid, floorplan.PolicyNone} {
		for _, eps := range []float64{-1, 0.03, 0.06} {
			o := opts
			o.Policy = pol
			o.TieEpsilonRel = eps
			pl, err := floorplan.Plan(suit, sc.Suitable, o)
			if err != nil {
				log.Fatal(err)
			}
			e, err := floorplan.Evaluate(ev, mod, pl, spec)
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("%.2f", eps)
			if eps < 0 {
				label = "exact"
			}
			tb2.AddRowf("%s|%s|%0.3f|%0.1f", pol, label, e.NetMWh(), e.WiringExtraM)
		}
	}
	fmt.Println(tb2)

	fmt.Println("A3 — greedy vs branch-and-bound optimal (reduced instances):")
	tb3 := report.NewTable("grid", "N", "greedy score", "optimal score", "gap")
	for _, n := range []int{2, 3, 4} {
		sub := subSuitability(suit, sc.Suitable, 60, 24)
		subMask := subMask(sc.Suitable, 60, 24)
		g, err := floorplan.Plan(sub, subMask, floorplan.Options{
			Shape: sc.Shape, Topology: topoOf(n),
		})
		if err != nil {
			log.Fatal(err)
		}
		o, err := opt.Optimal(sub, subMask, opt.Options{Shape: sc.Shape, N: n})
		if err != nil {
			log.Fatal(err)
		}
		gap := (o.Score - g.SuitabilitySum) / o.Score * 100
		tb3.AddRowf("60x24|%d|%0.1f|%0.1f|%0.2f%%", n, g.SuitabilitySum, o.Score, gap)
	}
	fmt.Println(tb3)

	fmt.Println("A4 — annealing refinement over the greedy seed (Roof 2, N=32):")
	plGreedy, err := floorplan.Plan(suit, sc.Suitable, opts)
	if err != nil {
		log.Fatal(err)
	}
	eGreedy, err := floorplan.Evaluate(ev, mod, plGreedy, spec)
	if err != nil {
		log.Fatal(err)
	}
	refined, err := anneal.Refine(plGreedy, suit, sc.Suitable, anneal.Options{Seed: 1, Iterations: anneal.Ptr(30000)})
	if err != nil {
		log.Fatal(err)
	}
	eRef, err := floorplan.Evaluate(ev, mod, refined, spec)
	if err != nil {
		log.Fatal(err)
	}
	tb4 := report.NewTable("placement", "suit sum", "net MWh", "wiring (m)")
	tb4.AddRowf("greedy|%0.1f|%0.3f|%0.1f", plGreedy.SuitabilitySum, eGreedy.NetMWh(), eGreedy.WiringExtraM)
	tb4.AddRowf("greedy+anneal|%0.1f|%0.3f|%0.1f", refined.SuitabilitySum, eRef.NetMWh(), eRef.WiringExtraM)
	fmt.Println(tb4)
}

func (h *harness) writeArtifact(name string, fn func(*os.File) error) {
	if h.outDir == "" {
		return
	}
	if err := os.MkdirAll(h.outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(h.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}

func slug(s string) string { return strings.ReplaceAll(strings.ToLower(s), " ", "") }
