package main

import (
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/panel"
)

type geomRect = geom.Rect

func geomCell(x, y int) geom.Cell { return geom.Cell{X: x, Y: y} }

// topoOf builds a single-string topology of n modules for the reduced
// optimality-gap instances.
func topoOf(n int) panel.Topology {
	return panel.Topology{SeriesPerString: n, Strings: 1}
}

// subSuitability crops the top-left w×h corner of a suitability
// matrix (reduced instance for the branch-and-bound comparison).
func subSuitability(s *floorplan.Suitability, mask *geom.Mask, w, h int) *floorplan.Suitability {
	out := &floorplan.Suitability{W: w, H: h, S: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.S[y*w+x] = s.At(geom.Cell{X: x, Y: y})
		}
	}
	return out
}

// subMask crops the top-left w×h corner of a mask.
func subMask(mask *geom.Mask, w, h int) *geom.Mask {
	out := geom.NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Set(geom.Cell{X: x, Y: y}, mask.Get(geom.Cell{X: x, Y: y}))
		}
	}
	return out
}

// geomMask builds a fully-set mask of the given dimensions.
func geomMask(w, h int) *geom.Mask {
	m := geom.NewMask(w, h)
	m.Fill(true)
	return m
}

// topoOf2 builds an explicit m×n topology.
func topoOf2(m, n int) panel.Topology {
	return panel.Topology{SeriesPerString: m, Strings: n}
}
