package pvfloor

import (
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/district"
	"repro/internal/dsm"
	"repro/internal/gis"
	"repro/internal/solar/horizon"
)

// loadNeighborhoodTile reads the committed district fixture through
// the real interchange path (the same bytes cmd/pvdistrict would
// parse).
func loadNeighborhoodTile(t *testing.T) *dsm.Raster {
	t.Helper()
	return loadTileFixture(t, "testdata/district/neighborhood.asc")
}

// loadGabledTile reads the committed gabled-block fixture.
func loadGabledTile(t *testing.T) *dsm.Raster {
	t.Helper()
	return loadTileFixture(t, "testdata/district/gabled.asc")
}

func loadTileFixture(t *testing.T, path string) *dsm.Raster {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := gis.ReadAsc(f)
	if err != nil {
		t.Fatal(err)
	}
	tile, missing, err := g.ToRaster(0)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("fixture %s has %d NODATA cells, want 0", path, missing)
	}
	return tile
}

// TestNeighborhoodFixtureInSync pins the committed .asc fixture to the
// generator: if SyntheticNeighborhood changes, the fixture (and the
// golden corpus derived from it) must be regenerated via
//
//	go run ./cmd/roofgen -district -out testdata/district
//	go test . -run Golden -update
func TestNeighborhoodFixtureInSync(t *testing.T) {
	committed := loadNeighborhoodTile(t)
	generated := district.SyntheticNeighborhood()
	if committed.ContentHash() != generated.ContentHash() {
		t.Fatal("testdata/district/neighborhood.asc is out of sync with district.SyntheticNeighborhood();\n" +
			"regenerate: go run ./cmd/roofgen -district -out testdata/district && go test . -run Golden -update")
	}
}

// TestGabledFixtureInSync pins the gabled fixture to its generator the
// same way.
func TestGabledFixtureInSync(t *testing.T) {
	committed := loadGabledTile(t)
	generated := district.SyntheticGabledBlock()
	if committed.ContentHash() != generated.ContentHash() {
		t.Fatal("testdata/district/gabled.asc is out of sync with district.SyntheticGabledBlock();\n" +
			"regenerate: go run ./cmd/roofgen -district -out testdata/district && go test . -run Golden -update")
	}
}

// districtFingerprint reduces a district result to an exact string:
// every placement anchor and every energy figure down to the float
// bit pattern. Two runs agree iff their fingerprints match.
func districtFingerprint(res *DistrictResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ground=%x roofs=%d ranked=%v\n",
		math.Float64bits(res.Extraction.GroundZ), len(res.Plans), res.Ranked)
	for i := range res.Plans {
		rp := &res.Plans[i]
		fmt.Fprintf(&sb, "roof%d bldg=%d.%d rect=%v cells=%d slope=%x aspect=%x n=%d skipped=%q err=%v",
			rp.Roof.ID, rp.Roof.Building, rp.Roof.Segment, rp.Roof.Rect, rp.Roof.Cells,
			math.Float64bits(rp.Roof.Plane.SlopeDeg), math.Float64bits(rp.Roof.Plane.AspectDeg),
			rp.Modules, rp.Skipped, rp.Run.Err != nil)
		if rp.Planned() {
			r := rp.Run.Result
			fmt.Fprintf(&sb, " prop=%x trad=%x wire=%x anchors=%v trad-anchors=%v",
				math.Float64bits(r.ProposedEval.NetMWh()),
				math.Float64bits(r.TraditionalEval.NetMWh()),
				math.Float64bits(r.ProposedEval.WiringExtraM),
				r.Proposed.Anchors(), r.Traditional.Anchors())
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "totals prop=%x trad=%x wire=%x\n",
		math.Float64bits(res.TotalProposedMWh), math.Float64bits(res.TotalTraditionalMWh),
		math.Float64bits(res.TotalWiringExtraM))
	return sb.String()
}

// TestRunDistrictDeterministicAcrossWorkers is the district
// acceptance gate: the committed tile yields at least 3 roofs, every
// roof plans, and the entire ranked result — placements, energies,
// ranking — is bit-identical for every concurrency setting.
func TestRunDistrictDeterministicAcrossWorkers(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	var ref string
	for _, w := range []int{1, 2, 8} {
		res, err := RunDistrict(DistrictConfig{
			Tile:         tile,
			Concurrency:  w,
			FieldWorkers: w,
		})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if len(res.Extraction.Roofs) < 3 {
			t.Fatalf("workers %d: extracted %d roofs, want >= 3", w, len(res.Extraction.Roofs))
		}
		if len(res.Ranked) != len(res.Plans) {
			for i := range res.Plans {
				rp := &res.Plans[i]
				if !rp.Planned() {
					t.Logf("roof%d unplanned: skipped=%q err=%v", rp.Roof.ID, rp.Skipped, rp.Run.Err)
				}
			}
			t.Fatalf("workers %d: only %d of %d roofs planned", w, len(res.Ranked), len(res.Plans))
		}
		fp := districtFingerprint(res)
		if ref == "" {
			ref = fp
		} else if fp != ref {
			t.Fatalf("workers %d: district result differs from workers 1:\n--- w1 ---\n%s--- w%d ---\n%s",
				w, ref, w, fp)
		}
	}
}

// TestRunDistrictShrinksOverSizedRequest pins the no-space retry
// loop: forcing 24 modules on every roof must shrink the garage
// (which cannot hold 24) down in steps of 8 until it fits, not fail
// the roof.
func TestRunDistrictShrinksOverSizedRequest(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	res, err := RunDistrict(DistrictConfig{Tile: tile, Modules: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 4 {
		t.Fatalf("extracted %d roofs, want 4", len(res.Plans))
	}
	garage := &res.Plans[3]
	if !garage.Planned() {
		t.Fatalf("garage not planned: skipped=%q err=%v", garage.Skipped, garage.Run.Err)
	}
	if garage.Modules >= 24 {
		t.Fatalf("garage planned %d modules; 24 cannot fit, shrink expected", garage.Modules)
	}
	if got := garage.Run.Result.Proposed.Topology.Modules(); got != garage.Modules {
		t.Fatalf("reported %d modules but placement has %d", garage.Modules, got)
	}
}

func TestRunDistrictEmptyAndInvalid(t *testing.T) {
	if _, err := RunDistrict(DistrictConfig{}); err == nil {
		t.Error("nil tile accepted")
	}
	// A cap below one string can never plan anything; it must be
	// rejected up front rather than silently skipping every roof.
	tile := loadNeighborhoodTile(t)
	if _, err := RunDistrict(DistrictConfig{Tile: tile, MaxModules: 4}); err == nil {
		t.Error("MaxModules below one 8-module string accepted")
	}
	for _, n := range []int{4, 12, -8} {
		if _, err := RunDistrict(DistrictConfig{Tile: tile, Modules: n}); err == nil {
			t.Errorf("Modules=%d accepted (must be a positive multiple of 8)", n)
		}
	}
	flat, err := dsm.NewRaster(40, 40, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDistrict(DistrictConfig{Tile: flat})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) != 0 || len(res.Ranked) != 0 || res.TotalProposedMWh != 0 {
		t.Errorf("flat tile produced plans: %+v", res.Plans)
	}
}

func TestDistrictTableFormat(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	res, err := RunDistrict(DistrictConfig{Tile: tile})
	if err != nil {
		t.Fatal(err)
	}
	out := DistrictTable(res)
	for _, want := range []string{"Rank", "roof01", "District totals", "roofs planned"} {
		if !strings.Contains(out, want) {
			t.Errorf("district table missing %q:\n%s", want, out)
		}
	}
	// Ranking is best-first by proposed net energy.
	for i := 1; i < len(res.Ranked); i++ {
		prev := res.Plans[res.Ranked[i-1]].Run.Result.ProposedEval.NetMWh()
		cur := res.Plans[res.Ranked[i]].Run.Result.ProposedEval.NetMWh()
		if cur > prev {
			t.Errorf("ranking not descending: %g before %g", prev, cur)
		}
	}
}

// TestRunDistrictSharedCacheConcurrentReuse is the shared-dir stress
// gate for the tile-level horizon artifact: one warm-up district run
// populates the cache, then several district runs execute concurrently
// against the same directory. Every run must restore the one tile
// horizon instead of ray-marching (a zero global BuildCount delta
// proves no run rebuilt anything) and produce a result bit-identical
// to the warm-up. Run under -race this also pins the cache's
// concurrent-reader safety.
func TestRunDistrictSharedCacheConcurrentReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four district sweeps")
	}
	tile := loadNeighborhoodTile(t)
	dir := t.TempDir()
	warm, err := RunDistrict(DistrictConfig{Tile: tile, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ref := districtFingerprint(warm)

	const runs = 3
	before := horizon.BuildCount()
	fps := make([]string, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunDistrict(DistrictConfig{Tile: tile, CacheDir: dir, Concurrency: 2})
			if err != nil {
				errs[i] = err
				return
			}
			fps[i] = districtFingerprint(res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	if d := horizon.BuildCount() - before; d != 0 {
		t.Errorf("concurrent warm runs ray-marched %d horizon maps, want 0 (tile artifact reuse)", d)
	}
	for i, fp := range fps {
		if fp != ref {
			t.Errorf("concurrent run %d differs from the warm-up run:\n--- warm ---\n%s--- got ---\n%s",
				i, ref, fp)
		}
	}
}
