package pvfloor

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/gis"
	"repro/internal/solar/horizon"
)

// This file is the pvfloor slice of the resilience test layer: tile
// retry with observed backoff, graceful degradation on exhausted
// retries, drain + checkpoint + resume equivalence, and corrupt-record
// recovery. The process-kill variant lives in city_kill_test.go.

// cityReportJSON flattens a result to its canonical report bytes —
// the byte-equality currency of the resume tests.
func cityReportJSON(t *testing.T, cr *CityResult) []byte {
	t.Helper()
	raw, err := json.Marshal(NewCityReport(cr))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// countingCheckpoint wraps a CityCheckpoint and counts traffic, so
// tests can assert which tiles were replayed vs re-run.
type countingCheckpoint struct {
	inner CityCheckpoint

	mu      sync.Mutex
	lookups int
	hits    int
	commits int
}

func (c *countingCheckpoint) Lookup(tile int) (*TileRecord, error) {
	rec, err := c.inner.Lookup(tile)
	c.mu.Lock()
	c.lookups++
	if rec != nil {
		c.hits++
	}
	c.mu.Unlock()
	return rec, err
}

func (c *countingCheckpoint) Commit(tile int, rec *TileRecord) error {
	c.mu.Lock()
	c.commits++
	c.mu.Unlock()
	return c.inner.Commit(tile, rec)
}

// TestCityTileRetrySucceeds pins the retry contract: a tile failing
// its first N−1 attempts succeeds on attempt N, the capped
// exponential backoff is observed between attempts, and the final
// fleet is identical to a fault-free run.
func TestCityTileRetrySucceeds(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	baseline, err := RunCity(CityConfig{
		Source:    &gis.RasterSource{Raster: tile},
		TileCells: 80,
	})
	if err != nil {
		t.Fatal(err)
	}

	const backoff = 20 * time.Millisecond
	var mu sync.Mutex
	var stamps []time.Time
	city, err := RunCity(CityConfig{
		Source:      &gis.RasterSource{Raster: tile},
		TileCells:   80,
		TileRetries: 2,
		Backoff:     backoff,
		TileFault: func(tileIdx, attempt int) error {
			if tileIdx != 1 {
				return nil
			}
			mu.Lock()
			stamps = append(stamps, time.Now())
			mu.Unlock()
			if attempt <= 2 {
				return fmt.Errorf("injected flake (attempt %d)", attempt)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 3 {
		t.Fatalf("tile 1 ran %d attempts, want 3", len(stamps))
	}
	if g1 := stamps[1].Sub(stamps[0]); g1 < backoff {
		t.Errorf("first retry after %v, want >= %v backoff", g1, backoff)
	}
	if g2 := stamps[2].Sub(stamps[1]); g2 < 2*backoff {
		t.Errorf("second retry after %v, want >= %v (doubled backoff)", g2, 2*backoff)
	}
	if a := city.Tiles[1].Attempts; a != 3 {
		t.Errorf("tile 1 recorded %d attempts, want 3", a)
	}
	for _, i := range []int{0, 2, 3} {
		if a := city.Tiles[i].Attempts; a != 1 {
			t.Errorf("healthy tile %d recorded %d attempts, want 1", i, a)
		}
	}
	// The fleet itself is untouched by the flake: same roofs, same
	// energies, same ranking.
	rep, base := NewCityReport(city), NewCityReport(baseline)
	rep.Tiles, base.Tiles = nil, nil // attempts differ by design
	got, _ := json.Marshal(rep)
	want, _ := json.Marshal(base)
	if string(got) != string(want) {
		t.Errorf("retried run's fleet differs from fault-free run:\ngot:  %s\nwant: %s", got, want)
	}
	// The report surfaces the retry count.
	full := cityReportJSON(t, city)
	if !strings.Contains(string(full), `"attempts":3`) {
		t.Errorf("city report does not surface the retry count: %s", full)
	}
}

// TestCityTileExhaustedRetriesDegrades pins graceful degradation: a
// tile that exhausts its retries surfaces as failed — with its error,
// in result, report and table — while every other tile's roofs
// complete and rank normally.
func TestCityTileExhaustedRetriesDegrades(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	baseline, err := RunCity(CityConfig{
		Source:    &gis.RasterSource{Raster: tile},
		TileCells: 80,
	})
	if err != nil {
		t.Fatal(err)
	}

	city, err := RunCity(CityConfig{
		Source:      &gis.RasterSource{Raster: tile},
		TileCells:   80,
		TileRetries: 1,
		Backoff:     time.Millisecond,
		TileFault: func(tileIdx, attempt int) error {
			if tileIdx == 1 {
				return errors.New("injected permanent fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("exhausted tile must degrade, not abort: %v", err)
	}
	ti := city.Tiles[1]
	if !strings.Contains(ti.Failed, "injected permanent fault") || ti.Attempts != 2 {
		t.Fatalf("failed tile recorded as %+v, want the injected error after 2 attempts", ti)
	}
	if ti.Roofs != 0 {
		t.Errorf("failed tile claims %d roofs", ti.Roofs)
	}
	lost := baseline.Tiles[1].Roofs
	if lost == 0 {
		t.Fatal("fixture tile 1 owns no roofs; the test has lost its point")
	}
	if len(city.Plans) != len(baseline.Plans)-lost {
		t.Errorf("degraded run has %d plans, want %d (baseline %d minus %d lost)",
			len(city.Plans), len(baseline.Plans)-lost, len(baseline.Plans), lost)
	}
	for i := range city.Plans {
		if !city.Plans[i].Planned() {
			t.Errorf("surviving roof %d unplanned", city.Plans[i].Roof.ID)
		}
	}
	rep := string(cityReportJSON(t, city))
	if !strings.Contains(rep, `"failed":"injected permanent fault"`) {
		t.Errorf("report does not surface the tile failure: %s", rep)
	}
	if tbl := CityTable(city); !strings.Contains(tbl, "WARNING: 1 tile(s) failed") {
		t.Errorf("table does not warn about the failed tile:\n%s", tbl)
	}
}

// TestCityDrainCheckpointResume pins the graceful-interruption path
// end to end: a drained run checkpoints every finished tile and
// returns ErrInterrupted; a resumed run replays exactly those tiles
// (no recomputation — asserted via the horizon build counter), runs
// only the unfinished ones, and stitches a report byte-equal to an
// uninterrupted run's.
func TestCityDrainCheckpointResume(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	cfg := CityConfig{
		Source:    &gis.RasterSource{Raster: tile},
		TileCells: 80, // 4 tiles
	}
	b0 := horizon.BuildCount()
	baseline, err := RunCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullBuilds := horizon.BuildCount() - b0
	if fullBuilds == 0 {
		t.Fatal("baseline run built no horizons; the build-count assertion has lost its teeth")
	}
	wantReport := cityReportJSON(t, baseline)

	ckpt, err := NewDirCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := &countingCheckpoint{inner: ckpt}
	drain := make(chan struct{})
	var closeOnce sync.Once
	interrupted := cfg
	interrupted.TileWorkers = 1
	interrupted.Checkpoint = first
	interrupted.Drain = drain
	interrupted.Progress = func(ev CityEvent) {
		if ev.Kind == CityTileFinished {
			closeOnce.Do(func() { close(drain) })
		}
	}
	b1 := horizon.BuildCount()
	if _, err := RunCity(interrupted); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("drained run returned %v, want ErrInterrupted", err)
	}
	partialBuilds := horizon.BuildCount() - b1
	if first.commits == 0 || first.commits >= 4 {
		t.Fatalf("drained run committed %d tiles, want some but not all", first.commits)
	}

	second := &countingCheckpoint{inner: ckpt}
	resumed := cfg
	resumed.Checkpoint = second
	b2 := horizon.BuildCount()
	city, err := RunCity(resumed)
	if err != nil {
		t.Fatal(err)
	}
	resumeBuilds := horizon.BuildCount() - b2
	if got := cityReportJSON(t, city); string(got) != string(wantReport) {
		t.Errorf("resumed report differs from uninterrupted run:\ngot:  %s\nwant: %s", got, wantReport)
	}
	if second.hits != first.commits {
		t.Errorf("resume replayed %d tiles, want the %d committed before the drain", second.hits, first.commits)
	}
	if second.commits != 4-first.commits {
		t.Errorf("resume ran %d tiles live, want %d", second.commits, 4-first.commits)
	}
	// Replayed tiles compute nothing: the two runs' horizon marches
	// must partition the uninterrupted run's.
	if partialBuilds+resumeBuilds != fullBuilds {
		t.Errorf("interrupted+resumed runs built %d+%d horizons, want %d total (replay must not recompute)",
			partialBuilds, resumeBuilds, fullBuilds)
	}
	// A third run over the complete checkpoint replays everything.
	third := &countingCheckpoint{inner: ckpt}
	replayAll := cfg
	replayAll.Checkpoint = third
	b3 := horizon.BuildCount()
	replayed, err := RunCity(replayAll)
	if err != nil {
		t.Fatal(err)
	}
	if d := horizon.BuildCount() - b3; d != 0 {
		t.Errorf("full replay ray-marched %d horizons, want 0", d)
	}
	if third.hits != 4 || third.commits != 0 {
		t.Errorf("full replay hit %d records and committed %d, want 4/0", third.hits, third.commits)
	}
	if got := cityReportJSON(t, replayed); string(got) != string(wantReport) {
		t.Errorf("fully replayed report differs from uninterrupted run")
	}
}

// TestCityCorruptCheckpointRecordReruns pins torn-record recovery: a
// record truncated mid-file (the torn write the atomic protocol
// prevents, simulated directly) reads as absent, its tile re-runs,
// and the resumed report is still byte-equal.
func TestCityCorruptCheckpointRecordReruns(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	dir := t.TempDir()
	ckpt, err := NewDirCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CityConfig{
		Source:     &gis.RasterSource{Raster: tile},
		TileCells:  80,
		Checkpoint: ckpt,
	}
	baseline, err := RunCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReport := cityReportJSON(t, baseline)

	// Tear one record and garbage another.
	recs, err := filepath.Glob(filepath.Join(dir, "tile-*.json"))
	if err != nil || len(recs) != 4 {
		t.Fatalf("checkpoint holds %d records (err %v), want 4", len(recs), err)
	}
	raw, err := os.ReadFile(recs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recs[1], raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recs[2], []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	counting := &countingCheckpoint{inner: ckpt}
	resumed := cfg
	resumed.Checkpoint = counting
	city, err := RunCity(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if counting.hits != 2 || counting.commits != 2 {
		t.Errorf("resume hit %d records and re-ran %d tiles, want 2/2", counting.hits, counting.commits)
	}
	if got := cityReportJSON(t, city); string(got) != string(wantReport) {
		t.Errorf("resume over corrupt records differs from baseline:\ngot:  %s\nwant: %s", got, wantReport)
	}
}

// TestCityCheckpointCommitFailureAborts pins the durability contract:
// a Commit that cannot persist (injected fsync failure) aborts the
// run instead of letting an unrecorded tile count as done.
func TestCityCheckpointCommitFailureAborts(t *testing.T) {
	tile := loadNeighborhoodTile(t)
	inj := faultfs.Wrap(faultfs.OS())
	ckpt, err := NewDirCheckpointFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNthSync(1)
	_, err = RunCity(CityConfig{
		Source:     &gis.RasterSource{Raster: tile},
		TileCells:  80,
		Checkpoint: ckpt,
	})
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("run with failing checkpoint returned %v, want the injected commit failure", err)
	}
}

// TestDirCheckpointRoundTrip pins the record codec symmetry on its
// own, away from the pipeline.
func TestDirCheckpointRoundTrip(t *testing.T) {
	ckpt, err := NewDirCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := ckpt.Lookup(7); err != nil || rec != nil {
		t.Fatalf("lookup before commit = (%v, %v), want (nil, nil)", rec, err)
	}
	in := &TileRecord{
		Version: tileRecordVersion,
		Info:    CityTileInfo{Index: 7, Attempts: 2, Roofs: 1, GroundZ: 3.25},
		Roofs: []TileRoofRecord{{
			Modules: 16,
			Outcome: PlanOutcome{Planned: true, ProposedMWh: 1.0625, TraditionalMWh: 0.875, GainPct: 21.428571428571427},
		}},
	}
	if err := ckpt.Commit(7, in); err != nil {
		t.Fatal(err)
	}
	out, err := ckpt.Lookup(7)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Info != in.Info || len(out.Roofs) != 1 || out.Roofs[0].Outcome != in.Roofs[0].Outcome {
		t.Fatalf("round trip mangled the record: %+v", out)
	}
	// A record filed under the wrong tile index is not trusted.
	if err := ckpt.Commit(8, in); err != nil {
		t.Fatal(err)
	}
	if rec, err := ckpt.Lookup(8); err != nil || rec != nil {
		t.Fatalf("mis-indexed record lookup = (%v, %v), want (nil, nil)", rec, err)
	}
}
