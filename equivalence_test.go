package pvfloor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/objective"
	"repro/internal/scenario"
	"repro/internal/solar/field"
	"repro/internal/solar/horizon"
	"repro/internal/wiring"
)

// TestFieldParallelEquivalenceOnRoofs builds the solar field of two
// paper roofs twice — once on the serial reference path (Workers=1)
// and once on the parallel engine — and requires the per-cell
// statistics to be bit-identical: same NaN mask, same percentiles,
// same means, same sample counts.
func TestFieldParallelEquivalenceOnRoofs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four solar fields")
	}
	for _, mk := range []struct {
		name  string
		build func() (*scenario.Scenario, error)
	}{
		{"Residential", Residential},
		{"Roof2", Roof2},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sc, err := mk.build()
			if err != nil {
				t.Fatal(err)
			}
			grid := scenario.FastGrid()
			serial, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			csSerial, err := serial.StatsPercentileSerial(75)
			if err != nil {
				t.Fatal(err)
			}
			csParallel, err := parallel.StatsPercentile(75)
			if err != nil {
				t.Fatal(err)
			}
			if csSerial.Samples == 0 {
				t.Fatal("no samples accumulated")
			}
			if csSerial.Samples != csParallel.Samples {
				t.Fatalf("samples: serial %d vs parallel %d", csSerial.Samples, csParallel.Samples)
			}
			if csSerial.W != csParallel.W || csSerial.H != csParallel.H {
				t.Fatalf("dims differ: %dx%d vs %dx%d",
					csSerial.W, csSerial.H, csParallel.W, csParallel.H)
			}
			diff := 0
			for i := range csSerial.GPct {
				if math.Float64bits(csSerial.GPct[i]) != math.Float64bits(csParallel.GPct[i]) ||
					math.Float64bits(csSerial.GMean[i]) != math.Float64bits(csParallel.GMean[i]) ||
					math.Float64bits(csSerial.TactPct[i]) != math.Float64bits(csParallel.TactPct[i]) {
					diff++
				}
			}
			if diff != 0 {
				t.Errorf("%d of %d cells differ between serial and parallel stats",
					diff, len(csSerial.GPct))
			}
		})
	}
}

// TestSectorKernelEquivalenceOnRoofs pins the sector-sweep statistics
// kernel on the three paper roofs: for percentiles {50, 75, 90} and
// Workers ∈ {1, 2, 8} the pass must be bit-identical across worker
// counts (per-cell accumulation shares nothing), and against the
// retired scalar reference (StatsPercentileScalar) the
// histogram-derived outputs — GPct, TactPct, Samples, the NaN mask —
// must match bit-for-bit, with GMean agreeing to floating-point
// rounding (the kernel sums in its documented sector order instead of
// calendar order).
func TestSectorKernelEquivalenceOnRoofs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds nine solar fields")
	}
	scs, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	grid := scenario.FastGrid()
	for _, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			evs := map[int]*field.Evaluator{}
			for _, workers := range []int{1, 2, 8} {
				ev, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				evs[workers] = ev
			}
			for _, pct := range []float64{50, 75, 90} {
				ref, err := evs[1].StatsPercentile(pct)
				if err != nil {
					t.Fatal(err)
				}
				if ref.Samples == 0 {
					t.Fatal("no samples accumulated")
				}
				for _, workers := range []int{2, 8} {
					got, err := evs[workers].StatsPercentile(pct)
					if err != nil {
						t.Fatal(err)
					}
					if got.Samples != ref.Samples || got.W != ref.W || got.H != ref.H {
						t.Fatalf("pct %g workers %d: frame mismatch", pct, workers)
					}
					for i := range ref.GPct {
						if math.Float64bits(got.GPct[i]) != math.Float64bits(ref.GPct[i]) ||
							math.Float64bits(got.GMean[i]) != math.Float64bits(ref.GMean[i]) ||
							math.Float64bits(got.TactPct[i]) != math.Float64bits(ref.TactPct[i]) {
							t.Fatalf("pct %g: workers %d differs from serial at cell %d", pct, workers, i)
						}
					}
				}
				scal, err := evs[1].StatsPercentileScalar(pct)
				if err != nil {
					t.Fatal(err)
				}
				if scal.Samples != ref.Samples {
					t.Fatalf("pct %g: scalar samples %d vs kernel %d", pct, scal.Samples, ref.Samples)
				}
				for i := range ref.GPct {
					if math.Float64bits(scal.GPct[i]) != math.Float64bits(ref.GPct[i]) ||
						math.Float64bits(scal.TactPct[i]) != math.Float64bits(ref.TactPct[i]) {
						t.Fatalf("pct %g: kernel percentiles differ from scalar reference at cell %d", pct, i)
					}
					if math.IsNaN(ref.GMean[i]) != math.IsNaN(scal.GMean[i]) {
						t.Fatalf("pct %g: NaN mask differs from scalar reference at cell %d", pct, i)
					}
					if !math.IsNaN(ref.GMean[i]) {
						rel := math.Abs(ref.GMean[i]-scal.GMean[i]) / math.Max(1, math.Abs(scal.GMean[i]))
						if rel > 1e-12 {
							t.Fatalf("pct %g cell %d: GMean %v vs scalar %v (rel %g)",
								pct, i, ref.GMean[i], scal.GMean[i], rel)
						}
					}
				}
			}
		})
	}
}

// TestRunWorkersKnobEquivalence: a full pipeline run must give the
// same placements and energies for any Workers setting.
func TestRunWorkersKnobEquivalence(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(Config{Scenario: sc, Modules: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Config{Scenario: sc, Modules: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.ProposedEval.NetMWh() != parallel.ProposedEval.NetMWh() {
		t.Errorf("proposed energy differs: %v vs %v",
			serial.ProposedEval.NetMWh(), parallel.ProposedEval.NetMWh())
	}
	if serial.TraditionalEval.NetMWh() != parallel.TraditionalEval.NetMWh() {
		t.Errorf("baseline energy differs: %v vs %v",
			serial.TraditionalEval.NetMWh(), parallel.TraditionalEval.NetMWh())
	}
	if len(serial.Proposed.Rects) != len(parallel.Proposed.Rects) {
		t.Fatalf("placement sizes differ")
	}
	for i := range serial.Proposed.Rects {
		if serial.Proposed.Rects[i] != parallel.Proposed.Rects[i] {
			t.Errorf("module %d placed differently: %v vs %v",
				i, serial.Proposed.Rects[i], parallel.Proposed.Rects[i])
		}
	}
	// Both runs share one calendar/site/turbidity: the astronomy must
	// have been memoized, not recomputed per run.
	if field.AstroCacheLen() == 0 {
		t.Error("astro cache empty after two runs over the same calendar")
	}
}

// TestObjectiveTraceEquivalenceOnRoofs drives the optimizer layer's
// incremental objective through a long recorded random-move trace on
// two paper roofs and requires, after every applied move, that the
// incrementally maintained value is bit-identical to the from-scratch
// re-evaluation (full footprint re-sum + full wiring estimator). This
// is the contract that lets the annealing strategies trust millions
// of O(1) delta evaluations.
func TestObjectiveTraceEquivalenceOnRoofs(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func() (*scenario.Scenario, error)
	}{
		{"Roof1", Roof1},
		{"Roof2", Roof2},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sc, err := mk.build()
			if err != nil {
				t.Fatal(err)
			}
			ev, err := sc.FieldWith(scenario.FieldConfig{Grid: scenario.FastGrid(), Fast: true})
			if err != nil {
				t.Fatal(err)
			}
			cs, err := ev.CachedStats()
			if err != nil {
				t.Fatal(err)
			}
			suit, err := floorplan.ComputeSuitability(cs, floorplan.SuitabilityOptions{})
			if err != nil {
				t.Fatal(err)
			}
			topo, err := scenario.Topology(32)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := floorplan.Plan(suit, sc.Suitable, floorplan.Options{Shape: sc.Shape, Topology: topo})
			if err != nil {
				t.Fatal(err)
			}
			obj, err := objective.New(suit, sc.Suitable, objective.Params{
				Shape:        sc.Shape,
				Topology:     topo,
				WiringWeight: objective.DefaultWiringWeight,
				Spec:         wiring.AWG10(scenario.CellSizeM),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := obj.Bind(pl.Rects); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2026))
			aw, ah := obj.AnchorDims()
			const wantMoves = 1200
			applied := 0
			for proposals := 0; applied < wantMoves; proposals++ {
				if proposals > 500*wantMoves {
					t.Fatalf("only %d of %d moves applied after %d proposals", applied, wantMoves, proposals)
				}
				k := rng.Intn(len(pl.Rects))
				anchor := geom.Cell{X: rng.Intn(aw), Y: rng.Intn(ah)}
				if _, ok := obj.DeltaMove(k, anchor); !ok {
					continue
				}
				if err := obj.ApplyMove(k, anchor); err != nil {
					t.Fatal(err)
				}
				applied++
				want, err := obj.FromScratch(obj.Rects())
				if err != nil {
					t.Fatal(err)
				}
				if got := obj.Value(); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("move %d: incremental %v (bits %x) != from-scratch %v (bits %x)",
						applied, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		})
	}
}

// TestMultiStartWorkerEquivalenceThroughConfig runs the public
// multistart strategy end to end with SearchWorkers 1, 2 and 8 and
// requires identical proposed placements and energies — the same
// determinism contract the solar-field engine gives for
// Config.Workers.
func TestMultiStartWorkerEquivalenceThroughConfig(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := Run(Config{
			Scenario: sc,
			Modules:  8,
			Optimizer: OptimizerConfig{
				Strategy:      StrategyMultiStart,
				Seed:          5,
				Iterations:    2000,
				Restarts:      6,
				SearchWorkers: workers,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.ProposedEval.NetMWh() != ref.ProposedEval.NetMWh() {
			t.Errorf("SearchWorkers=%d energy %v differs from serial %v",
				workers, res.ProposedEval.NetMWh(), ref.ProposedEval.NetMWh())
		}
		for i := range ref.Proposed.Rects {
			if res.Proposed.Rects[i] != ref.Proposed.Rects[i] {
				t.Errorf("SearchWorkers=%d module %d at %v, serial at %v",
					workers, i, res.Proposed.Rects[i], ref.Proposed.Rects[i])
			}
		}
	}
}

// TestSharedHorizonEquivalenceOnRoofs is the tile-sharing contract on
// the paper roofs: a horizon map built region-wise over the scene and
// sliced to the roof (the district fast path) must yield per-cell
// statistics bit-identical to the per-roof horizon build, for every
// worker count — same NaN mask, same percentiles, same means.
func TestSharedHorizonEquivalenceOnRoofs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several solar fields")
	}
	scs, err := scenario.All()
	if err != nil {
		t.Fatal(err)
	}
	grid := scenario.FastGrid()
	for _, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			plain, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := plain.StatsPercentile(75)
			if err != nil {
				t.Fatal(err)
			}
			tile, err := horizon.BuildRegions(sc.Scene.Raster, []geom.Rect{sc.Scene.RoofRect},
				scenario.FastHorizonOptions(), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				shared := *sc
				shared.SharedHorizon = tile
				before := horizon.BuildCount()
				ev, err := shared.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if d := horizon.BuildCount() - before; d != 0 {
					t.Fatalf("workers %d: shared-horizon evaluator ray-marched %d maps, want 0", workers, d)
				}
				cs, err := ev.StatsPercentile(75)
				if err != nil {
					t.Fatal(err)
				}
				if cs.Samples != ref.Samples || cs.W != ref.W || cs.H != ref.H {
					t.Fatalf("workers %d: frame mismatch", workers)
				}
				for i := range ref.GPct {
					if math.Float64bits(cs.GPct[i]) != math.Float64bits(ref.GPct[i]) ||
						math.Float64bits(cs.GMean[i]) != math.Float64bits(ref.GMean[i]) ||
						math.Float64bits(cs.TactPct[i]) != math.Float64bits(ref.TactPct[i]) {
						t.Fatalf("workers %d: shared-horizon stats differ from per-roof build at cell %d",
							workers, i)
					}
				}
			}
		})
	}
}

// TestDistrictSharedHorizonEquivalence is the district-level contract:
// on the neighborhood tile, the shared-tile horizon path (the default)
// and the per-roof escape hatch must produce bit-identical district
// results — placements, energies, ranking — for Concurrency and
// FieldWorkers 1, 2 and 8, while building the horizon exactly once per
// tile instead of once per roof.
func TestDistrictSharedHorizonEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six district sweeps")
	}
	tile := loadNeighborhoodTile(t)
	var ref string
	for _, w := range []int{1, 2, 8} {
		for _, perRoof := range []bool{false, true} {
			before := horizon.BuildCount()
			res, err := RunDistrict(DistrictConfig{
				Tile:           tile,
				PerRoofHorizon: perRoof,
				Concurrency:    w,
				FieldWorkers:   w,
			})
			if err != nil {
				t.Fatalf("workers %d perRoof %v: %v", w, perRoof, err)
			}
			builds := horizon.BuildCount() - before
			if perRoof {
				if want := uint64(len(res.Plans)); builds != want {
					t.Errorf("workers %d per-roof: %d horizon builds, want %d (one per roof)",
						w, builds, want)
				}
			} else if builds != 1 {
				t.Errorf("workers %d shared: %d horizon builds, want exactly 1 per tile", w, builds)
			}
			fp := districtFingerprint(res)
			if ref == "" {
				ref = fp
			} else if fp != ref {
				t.Fatalf("workers %d perRoof %v: district result differs:\n--- ref ---\n%s--- got ---\n%s",
					w, perRoof, ref, fp)
			}
		}
	}
}
