package pvfloor

import (
	"math"
	"testing"

	"repro/internal/scenario"
	"repro/internal/solar/field"
)

// TestFieldParallelEquivalenceOnRoofs builds the solar field of two
// paper roofs twice — once on the serial reference path (Workers=1)
// and once on the parallel engine — and requires the per-cell
// statistics to be bit-identical: same NaN mask, same percentiles,
// same means, same sample counts.
func TestFieldParallelEquivalenceOnRoofs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds four solar fields")
	}
	for _, mk := range []struct {
		name  string
		build func() (*scenario.Scenario, error)
	}{
		{"Residential", Residential},
		{"Roof2", Roof2},
	} {
		t.Run(mk.name, func(t *testing.T) {
			sc, err := mk.build()
			if err != nil {
				t.Fatal(err)
			}
			grid := scenario.FastGrid()
			serial, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			csSerial, err := serial.StatsPercentileSerial(75)
			if err != nil {
				t.Fatal(err)
			}
			csParallel, err := parallel.StatsPercentile(75)
			if err != nil {
				t.Fatal(err)
			}
			if csSerial.Samples == 0 {
				t.Fatal("no samples accumulated")
			}
			if csSerial.Samples != csParallel.Samples {
				t.Fatalf("samples: serial %d vs parallel %d", csSerial.Samples, csParallel.Samples)
			}
			if csSerial.W != csParallel.W || csSerial.H != csParallel.H {
				t.Fatalf("dims differ: %dx%d vs %dx%d",
					csSerial.W, csSerial.H, csParallel.W, csParallel.H)
			}
			diff := 0
			for i := range csSerial.GPct {
				if math.Float64bits(csSerial.GPct[i]) != math.Float64bits(csParallel.GPct[i]) ||
					math.Float64bits(csSerial.GMean[i]) != math.Float64bits(csParallel.GMean[i]) ||
					math.Float64bits(csSerial.TactPct[i]) != math.Float64bits(csParallel.TactPct[i]) {
					diff++
				}
			}
			if diff != 0 {
				t.Errorf("%d of %d cells differ between serial and parallel stats",
					diff, len(csSerial.GPct))
			}
		})
	}
}

// TestRunWorkersKnobEquivalence: a full pipeline run must give the
// same placements and energies for any Workers setting.
func TestRunWorkersKnobEquivalence(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(Config{Scenario: sc, Modules: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Config{Scenario: sc, Modules: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.ProposedEval.NetMWh() != parallel.ProposedEval.NetMWh() {
		t.Errorf("proposed energy differs: %v vs %v",
			serial.ProposedEval.NetMWh(), parallel.ProposedEval.NetMWh())
	}
	if serial.TraditionalEval.NetMWh() != parallel.TraditionalEval.NetMWh() {
		t.Errorf("baseline energy differs: %v vs %v",
			serial.TraditionalEval.NetMWh(), parallel.TraditionalEval.NetMWh())
	}
	if len(serial.Proposed.Rects) != len(parallel.Proposed.Rects) {
		t.Fatalf("placement sizes differ")
	}
	for i := range serial.Proposed.Rects {
		if serial.Proposed.Rects[i] != parallel.Proposed.Rects[i] {
			t.Errorf("module %d placed differently: %v vs %v",
				i, serial.Proposed.Rects[i], parallel.Proposed.Rects[i])
		}
	}
	// Both runs share one calendar/site/turbidity: the astronomy must
	// have been memoized, not recomputed per run.
	if field.AstroCacheLen() == 0 {
		t.Error("astro cache empty after two runs over the same calendar")
	}
}
