package pvfloor

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"repro/internal/district"
	"repro/internal/faultfs"
)

// This file is the crash-safe persistence seam of RunCity: one JSON
// record per terminal tile, written atomically and durably, replayed
// on resume so a city run killed at tile 93 of 100 re-runs only the
// seven unfinished tiles and still stitches a byte-identical report.
// Records store window-local roof geometry — exactly what the live
// pipeline hands the stitch — so resumed tiles take the same stitch
// and report code path as live ones; the numeric outcome rides along
// as a flattened PlanOutcome (JSON float64 round-trips bit-exactly).

// tileRecordVersion guards the record layout: a record written by a
// different layout is ignored and its tile re-run.
const tileRecordVersion = 1

// TileRoofRecord persists one roof plan of a finished tile,
// window-local.
type TileRoofRecord struct {
	Roof    district.Roof `json:"roof"`
	Modules int           `json:"modules,omitempty"`
	Skipped string        `json:"skipped,omitempty"`
	Outcome PlanOutcome   `json:"outcome"`
}

// TileRecord persists one terminal work tile — planned, skipped or
// failed — of a checkpointed city run.
type TileRecord struct {
	Version int                `json:"version"`
	Info    CityTileInfo       `json:"info"`
	Roofs   []TileRoofRecord   `json:"roofs,omitempty"`
	Dropped []district.Dropped `json:"dropped,omitempty"`
}

// CityCheckpoint persists terminal tile outcomes for resumable city
// runs. Implementations must be safe for concurrent use (tile workers
// commit in parallel).
type CityCheckpoint interface {
	// Lookup returns the record for tile, or nil when the tile has no
	// usable record — absent, torn and corrupt records all read as
	// nil, so the tile simply re-runs. Errors are fatal to the run.
	Lookup(tile int) (*TileRecord, error)
	// Commit durably persists a terminal tile outcome before it
	// counts. It must not return success until the record would
	// survive a crash; Commit errors abort the run, because an
	// unrecorded "completed" tile would break resume equivalence.
	Commit(tile int, rec *TileRecord) error
}

// DirCheckpoint is the file-based CityCheckpoint: one JSON record per
// tile in one directory, published with faultfs.WriteFileAtomic
// (temp + fsync + rename + dir fsync) so a power cut mid-commit
// leaves either no record or a complete one — a torn record is
// impossible, and a corrupt one merely re-runs its tile.
type DirCheckpoint struct {
	dir  string
	fsys faultfs.FS
}

// NewDirCheckpoint opens (creating if needed) a checkpoint directory.
func NewDirCheckpoint(dir string) (*DirCheckpoint, error) {
	return NewDirCheckpointFS(dir, faultfs.OS())
}

// NewDirCheckpointFS opens a checkpoint directory over an explicit
// filesystem seam — the entry point the fault-injection tests use.
func NewDirCheckpointFS(dir string, fsys faultfs.FS) (*DirCheckpoint, error) {
	if dir == "" {
		return nil, fmt.Errorf("pvfloor: empty checkpoint directory")
	}
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pvfloor: checkpoint dir %s: %w", dir, err)
	}
	return &DirCheckpoint{dir: dir, fsys: fsys}, nil
}

// Dir returns the checkpoint directory.
func (d *DirCheckpoint) Dir() string { return d.dir }

func (d *DirCheckpoint) path(tile int) string {
	return filepath.Join(d.dir, fmt.Sprintf("tile-%06d.json", tile))
}

// Lookup implements CityCheckpoint.
func (d *DirCheckpoint) Lookup(tile int) (*TileRecord, error) {
	raw, err := d.fsys.ReadFile(d.path(tile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rec TileRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, nil // corrupt record: re-run the tile
	}
	if rec.Version != tileRecordVersion || rec.Info.Index != tile {
		return nil, nil
	}
	return &rec, nil
}

// Commit implements CityCheckpoint.
func (d *DirCheckpoint) Commit(tile int, rec *TileRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("pvfloor: encoding tile %d record: %w", tile, err)
	}
	return faultfs.WriteFileAtomic(d.fsys, d.path(tile), raw, 0o644)
}

// recordTile flattens a terminal tile outcome into its durable record.
func recordTile(out *tileOutcome) *TileRecord {
	rec := &TileRecord{Version: tileRecordVersion, Info: out.info, Dropped: out.dropped}
	for i := range out.plans {
		rp := &out.plans[i]
		rec.Roofs = append(rec.Roofs, TileRoofRecord{
			Roof: rp.Roof, Modules: rp.Modules, Skipped: rp.Skipped, Outcome: rp.Outcome(),
		})
	}
	return rec
}

// restoreTile rebuilds a tile outcome from its record. Restored plans
// carry their persisted PlanOutcome, so stitching and reporting run
// the exact code path a live tile takes.
func restoreTile(rec *TileRecord) *tileOutcome {
	out := &tileOutcome{info: rec.Info, dropped: rec.Dropped}
	for i := range rec.Roofs {
		rr := rec.Roofs[i]
		out.plans = append(out.plans, RoofPlan{
			Roof: rr.Roof, Modules: rr.Modules, Skipped: rr.Skipped, Restored: &rr.Outcome,
		})
	}
	return out
}
