// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V). Each benchmark measures the stage that produces
// the artifact; expensive shared inputs (scenario construction,
// solar-field simulation, per-cell statistics) are built once and
// cached, mirroring how the paper's pipeline separates solar data
// extraction (§IV) from placement (§III).
//
// Shape-level results (who wins, by how much) are emitted as
// b.ReportMetric custom metrics so `go test -bench` output documents
// the reproduction alongside the timings. Absolute MWh values at
// bench fidelity (reduced calendar) differ from EXPERIMENTS.md's
// full-fidelity numbers; the relative gains agree.
package pvfloor

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"repro/internal/anneal"
	"repro/internal/blobstore"
	"repro/internal/district"
	"repro/internal/dsm"
	"repro/internal/econ"
	"repro/internal/fieldcache"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/gis"
	"repro/internal/objective"
	"repro/internal/opt"
	"repro/internal/optimize"
	"repro/internal/panel"
	"repro/internal/pvmodel"
	"repro/internal/render"
	"repro/internal/scenario"
	"repro/internal/solar/field"
	"repro/internal/solar/horizon"
	"repro/internal/wiring"
)

// benchState caches the expensive pipeline inputs per roof.
type benchState struct {
	sc   *scenario.Scenario
	ev   *field.Evaluator
	cs   *field.CellStats
	suit *floorplan.Suitability
}

var (
	benchOnce  sync.Once
	benchRoofs []*benchState
	benchErr   error
)

func roofStates(b *testing.B) []*benchState {
	b.Helper()
	benchOnce.Do(func() {
		scs, err := scenario.All()
		if err != nil {
			benchErr = err
			return
		}
		for _, sc := range scs {
			ev, err := sc.FieldFast(scenario.FastGrid())
			if err != nil {
				benchErr = err
				return
			}
			cs, err := ev.Stats()
			if err != nil {
				benchErr = err
				return
			}
			suit, err := floorplan.ComputeSuitability(cs, floorplan.SuitabilityOptions{})
			if err != nil {
				benchErr = err
				return
			}
			benchRoofs = append(benchRoofs, &benchState{sc: sc, ev: ev, cs: cs, suit: suit})
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRoofs
}

func planOpts(b *testing.B, st *benchState, n int) floorplan.Options {
	b.Helper()
	topo, err := scenario.Topology(n)
	if err != nil {
		b.Fatal(err)
	}
	return floorplan.Options{Shape: st.sc.Shape, Topology: topo}
}

// BenchmarkTableI regenerates Table I: traditional vs proposed yearly
// production on Roofs 1-3 for N in {16, 32}. The gain percentage is
// reported as a custom metric.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	mod := pvmodel.PVMF165EB3()
	spec := wiring.AWG10(scenario.CellSizeM)
	for _, st := range roofStates(b) {
		for _, n := range []int{16, 32} {
			b.Run(fmt.Sprintf("%s/N=%d", slugify(st.sc.Name), n), func(b *testing.B) {
				b.ReportAllocs()
				opts := planOpts(b, st, n)
				var gain float64
				for i := 0; i < b.N; i++ {
					sparse, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
					if err != nil {
						b.Fatal(err)
					}
					compact, err := floorplan.PlanCompact(st.suit, st.sc.Suitable, opts)
					if err != nil {
						b.Fatal(err)
					}
					eS, err := floorplan.Evaluate(st.ev, mod, sparse, spec)
					if err != nil {
						b.Fatal(err)
					}
					eC, err := floorplan.Evaluate(st.ev, mod, compact, spec)
					if err != nil {
						b.Fatal(err)
					}
					gain = (eS.NetMWh() - eC.NetMWh()) / eC.NetMWh() * 100
				}
				b.ReportMetric(gain, "gain%")
			})
		}
	}
}

// BenchmarkFig1Conceptual regenerates the Fig. 1 motivation: sparse
// vs compact on a synthetic gradient surface.
func BenchmarkFig1Conceptual(b *testing.B) {
	b.ReportAllocs()
	const w, h = 72, 32
	suit := &floorplan.Suitability{W: w, H: h, S: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 40.0 + 0.4*float64(x)
			if x > 8 && x < 22 && y > 4 && y < 12 {
				v += 45
			}
			if x > 50 && y > 20 {
				v += 40
			}
			suit.S[y*w+x] = v
		}
	}
	mask := geom.NewMask(w, h)
	mask.Fill(true)
	opts := floorplan.Options{
		Shape:    floorplan.ModuleShape{W: 8, H: 4},
		Topology: panel.Topology{SeriesPerString: 4, Strings: 2},
		Policy:   floorplan.PolicyNone, // conceptual figure: reach both pockets
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		sparse, err := floorplan.Plan(suit, mask, opts)
		if err != nil {
			b.Fatal(err)
		}
		compact, err := floorplan.PlanCompact(suit, mask, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = sparse.SuitabilitySum / compact.SuitabilitySum
	}
	b.ReportMetric(ratio, "suit_ratio")
}

// BenchmarkFig2IVCurves regenerates the Fig. 2(a) I-V curves from the
// single-diode model.
func BenchmarkFig2IVCurves(b *testing.B) {
	b.ReportAllocs()
	dio := pvmodel.PVMF165EB3Diode()
	for i := 0; i < b.N; i++ {
		for _, g := range []float64{200, 400, 600, 800, 1000} {
			for _, tc := range []float64{0, 25, 50, 75} {
				curve := dio.IVCurve(g, tc, 60)
				if len(curve) != 60 {
					b.Fatal("bad curve")
				}
			}
		}
	}
}

// BenchmarkFig3ModuleCharacteristics regenerates the Fig. 3 power
// characteristics from the empirical model and reports the paper's 5x
// power swing over G in [200,1000].
func BenchmarkFig3ModuleCharacteristics(b *testing.B) {
	b.ReportAllocs()
	emp := pvmodel.PVMF165EB3()
	var swing float64
	for i := 0; i < b.N; i++ {
		for g := 100.0; g <= 1000; g += 25 {
			for tc := -5.0; tc <= 75; tc += 5 {
				op := emp.MPP(g, tc)
				if op.Power < 0 {
					b.Fatal("negative power")
				}
			}
		}
		swing = emp.MPP(1000, 25).Power / emp.MPP(200, 25).Power
	}
	b.ReportMetric(swing, "power_swing_x")
}

// BenchmarkFig4WiringModel regenerates the Fig. 4 wiring-overhead
// characterisation over displaced module pairs.
func BenchmarkFig4WiringModel(b *testing.B) {
	b.ReportAllocs()
	spec := wiring.AWG10(scenario.CellSizeM)
	shape := floorplan.ModuleShape{W: 8, H: 4}
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for dh := 0; dh <= 30; dh++ {
			for dv := 0; dv <= 20; dv++ {
				a := shape.Rect(geom.Cell{X: 0, Y: 0})
				c := shape.Rect(geom.Cell{X: 8 + dh, Y: dv})
				total += spec.ChainOverheadMeters([]geom.Rect{a, c})
			}
		}
	}
	_ = total
}

// BenchmarkFig6IrradianceMaps regenerates the Fig. 6(b) per-cell p75
// irradiance statistics (the full stats streaming pass per roof).
func BenchmarkFig6IrradianceMaps(b *testing.B) {
	b.ReportAllocs()
	for _, st := range roofStates(b) {
		b.Run(slugify(st.sc.Name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs, err := st.ev.Stats()
				if err != nil {
					b.Fatal(err)
				}
				if cs.Samples == 0 {
					b.Fatal("no samples")
				}
			}
		})
	}
}

// BenchmarkFig7Placements regenerates the Fig. 7 placement maps
// (N=32 planning plus ASCII rendering).
func BenchmarkFig7Placements(b *testing.B) {
	b.ReportAllocs()
	for _, st := range roofStates(b) {
		b.Run(slugify(st.sc.Name), func(b *testing.B) {
			b.ReportAllocs()
			opts := planOpts(b, st, 32)
			for i := 0; i < b.N; i++ {
				sparse, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
				if err != nil {
					b.Fatal(err)
				}
				art := render.PlacementASCII(st.sc.Suitable, sparse, 110)
				if len(art) == 0 {
					b.Fatal("empty map")
				}
			}
		})
	}
}

// BenchmarkOverheadAssessment regenerates the §V-C wiring overhead
// numbers and reports the worst-case extra cable metres.
func BenchmarkOverheadAssessment(b *testing.B) {
	b.ReportAllocs()
	spec := wiring.AWG10(scenario.CellSizeM)
	mod := pvmodel.PVMF165EB3()
	st := roofStates(b)[2] // Roof 3 exhibits the largest overhead
	opts := planOpts(b, st, 32)
	var worst float64
	for i := 0; i < b.N; i++ {
		pl, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
		if err != nil {
			b.Fatal(err)
		}
		e, err := floorplan.Evaluate(st.ev, mod, pl, spec)
		if err != nil {
			b.Fatal(err)
		}
		a, err := spec.Assess(pl.Rects, pl.Topology.SeriesPerString, 4.0, 0.5, e.GrossMWh)
		if err != nil {
			b.Fatal(err)
		}
		worst = a.ExtraCableM
	}
	b.ReportMetric(worst, "extra_cable_m")
}

// BenchmarkPlacementScaling measures the §V-B claim that placement
// time scales with Ng and N (the paper reports <120 s at ≈12k cells
// on a 2017 server; the greedy here runs in milliseconds).
func BenchmarkPlacementScaling(b *testing.B) {
	b.ReportAllocs()
	for _, st := range roofStates(b) {
		for _, n := range []int{8, 16, 32} {
			b.Run(fmt.Sprintf("%s/Ng=%d/N=%d", slugify(st.sc.Name), st.sc.Ng(), n), func(b *testing.B) {
				b.ReportAllocs()
				opts := planOpts(b, st, n)
				for i := 0; i < b.N; i++ {
					if _, err := floorplan.Plan(st.suit, st.sc.Suitable, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationPercentile sweeps the suitability statistic
// (ablation A1) on Roof 2, N=32.
func BenchmarkAblationPercentile(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	for _, pct := range []float64{50, 75, 90} {
		b.Run(fmt.Sprintf("p%.0f", pct), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs, err := st.ev.StatsPercentile(pct)
				if err != nil {
					b.Fatal(err)
				}
				suit, err := floorplan.ComputeSuitability(cs, floorplan.SuitabilityOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := floorplan.Plan(suit, st.sc.Suitable, planOpts(b, st, 32)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistancePolicy sweeps the §III-C distance filter
// (ablation A2) on Roof 2, N=32, reporting the wiring overhead each
// policy produces.
func BenchmarkAblationDistancePolicy(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	spec := wiring.AWG10(scenario.CellSizeM)
	for _, pol := range []floorplan.DistancePolicy{floorplan.PolicyChain, floorplan.PolicyCentroid, floorplan.PolicyNone} {
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			opts := planOpts(b, st, 32)
			opts.Policy = pol
			var extra float64
			for i := 0; i < b.N; i++ {
				pl, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
				if err != nil {
					b.Fatal(err)
				}
				extra, err = spec.PlacementOverheadMeters(pl.Rects, pl.Topology.SeriesPerString)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(extra, "wiring_m")
		})
	}
}

// BenchmarkOptimalityGap compares the greedy against the exact
// branch-and-bound placer on reduced instances (ablation A3) and
// reports the suitability-sum gap.
func BenchmarkOptimalityGap(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	sub := cropSuit(st.suit, 60, 24)
	mask := cropMask(st.sc.Suitable, 60, 24)
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var gap float64
			for i := 0; i < b.N; i++ {
				g, err := floorplan.Plan(sub, mask, floorplan.Options{
					Shape:    st.sc.Shape,
					Topology: panel.Topology{SeriesPerString: n, Strings: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				o, err := opt.Optimal(sub, mask, opt.Options{Shape: st.sc.Shape, N: n})
				if err != nil {
					b.Fatal(err)
				}
				gap = (o.Score - g.SuitabilitySum) / o.Score * 100
			}
			b.ReportMetric(gap, "gap%")
		})
	}
}

// BenchmarkAnnealRefine measures the simulated-annealing refinement
// over the greedy seed (ablation A4) on the incremental objective,
// reporting ns per proposed move alongside the relative improvement.
// The pre-refactor annealer — which re-summed the suitability field
// and re-ran the wiring estimator per move — cost ≈312 ns/move on
// this exact workload (Roof 2, N=32, 10000 iterations). The "warm"
// sub-benchmark shares one precomputed score table across calls via
// Fork (the multi-start / batch usage pattern) and must stay ≥5x
// below that baseline; "cold" additionally pays the one-off table
// construction inside every call.
func BenchmarkAnnealRefine(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	opts := planOpts(b, st, 32)
	seed, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
	if err != nil {
		b.Fatal(err)
	}
	const iters = 10000
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		var improve float64
		start := time.Now()
		for i := 0; i < b.N; i++ {
			refined, err := anneal.Refine(seed, st.suit, st.sc.Suitable, anneal.Options{
				Seed: int64(i + 1), Iterations: anneal.Ptr(iters),
			})
			if err != nil {
				b.Fatal(err)
			}
			improve = (refined.SuitabilitySum - seed.SuitabilitySum) / seed.SuitabilitySum * 100
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*iters), "ns/move")
		b.ReportMetric(improve, "suit_gain%")
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		obj, err := objective.New(st.suit, st.sc.Suitable, objective.Params{
			Shape:        opts.Shape,
			Topology:     opts.Topology,
			WiringWeight: objective.DefaultWiringWeight,
			Spec:         wiring.AWG10(scenario.CellSizeM),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := anneal.RefineWith(obj.Fork(), seed, anneal.Options{
				Seed: int64(i + 1), Iterations: anneal.Ptr(iters),
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds())/float64(b.N*iters), "ns/move")
	})
}

// BenchmarkMultiStart measures the parallel multi-start annealer (8
// restarts over one shared score table) against the single-walk
// refinement budgeted identically, reporting the objective values.
func BenchmarkMultiStart(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	opts := planOpts(b, st, 32)
	problem := optimize.Problem{Suit: st.suit, Mask: st.sc.Suitable, Opts: opts}
	iters := anneal.Ptr(10000)
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var val float64
			for i := 0; i < b.N; i++ {
				ms := optimize.MultiStart{Seed: 7, Iterations: iters, Restarts: 8, Workers: workers}
				pl, err := ms.Place(problem)
				if err != nil {
					b.Fatal(err)
				}
				v, err := optimize.Value(problem, pl)
				if err != nil {
					b.Fatal(err)
				}
				val = v
			}
			b.ReportMetric(val, "objective")
		})
	}
}

// BenchmarkObjectiveDelta contrasts the two evaluation paths of the
// shared objective on a recorded feasible move set: the incremental
// DeltaMove (table lookup + two wiring gaps) against the from-scratch
// re-evaluation (footprint re-sum + full wiring estimator) every
// search strategy would otherwise pay per candidate.
func BenchmarkObjectiveDelta(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	opts := planOpts(b, st, 32)
	seed, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
	if err != nil {
		b.Fatal(err)
	}
	obj, err := objective.New(st.suit, st.sc.Suitable, objective.Params{
		Shape:        opts.Shape,
		Topology:     opts.Topology,
		WiringWeight: objective.DefaultWiringWeight,
		Spec:         wiring.AWG10(scenario.CellSizeM),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := obj.Bind(seed.Rects); err != nil {
		b.Fatal(err)
	}
	// Record a pool of feasible relocations to price repeatedly.
	rng := rand.New(rand.NewSource(17))
	aw, ah := obj.AnchorDims()
	type move struct {
		k      int
		anchor geom.Cell
	}
	var moves []move
	for len(moves) < 256 {
		m := move{k: rng.Intn(len(seed.Rects)), anchor: geom.Cell{X: rng.Intn(aw), Y: rng.Intn(ah)}}
		if _, ok := obj.DeltaMove(m.k, m.anchor); ok {
			moves = append(moves, m)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		var acc float64
		for i := 0; i < b.N; i++ {
			m := moves[i%len(moves)]
			d, ok := obj.DeltaMove(m.k, m.anchor)
			if !ok {
				b.Fatal("recorded move became infeasible")
			}
			acc += d
		}
		_ = acc
	})
	b.Run("fromscratch", func(b *testing.B) {
		b.ReportAllocs()
		rects := obj.Rects()
		var acc float64
		for i := 0; i < b.N; i++ {
			m := moves[i%len(moves)]
			old := rects[m.k]
			rects[m.k] = opts.Shape.Rect(m.anchor)
			v, err := obj.FromScratch(rects)
			if err != nil {
				b.Fatal(err)
			}
			rects[m.k] = old
			acc += v
		}
		_ = acc
	})
}

func slugify(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

func cropSuit(s *floorplan.Suitability, w, h int) *floorplan.Suitability {
	out := &floorplan.Suitability{W: w, H: h, S: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.S[y*w+x] = s.At(geom.Cell{X: x, Y: y})
		}
	}
	return out
}

func cropMask(m *geom.Mask, w, h int) *geom.Mask {
	out := geom.NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Set(geom.Cell{X: x, Y: y}, m.Get(geom.Cell{X: x, Y: y}))
		}
	}
	return out
}

// BenchmarkFieldConstruction measures solar-field construction — the
// stage Run pays before any planning: memoized astronomy, parallel
// sky precompute, horizon map. Sub-benchmarks contrast the serial
// reference path against the parallel engine, and a cold astronomy
// cache against a warm one (the batch/fleet case, where every
// evaluator over the same calendar shares the memoized table). The
// full-year calendar on the residential roof keeps the sky precompute
// — the part concurrency and memoization accelerate — dominant over
// the horizon map.
func BenchmarkFieldConstruction(b *testing.B) {
	b.ReportAllocs()
	sc, err := scenario.Residential()
	if err != nil {
		b.Fatal(err)
	}
	grid := scenario.FullYearGrid()
	build := func(b *testing.B, workers int, cold bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if cold {
				field.ResetAstroCache()
			}
			if _, err := sc.FieldWith(scenario.FieldConfig{Grid: grid, Fast: true, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial-cold", func(b *testing.B) { build(b, 1, true) })
	b.Run("parallel-cold", func(b *testing.B) { build(b, 0, true) })
	b.Run("parallel-warm", func(b *testing.B) { build(b, 0, false) })
}

// BenchmarkRunBatch measures the batch runner planning all Table I
// roofs in one invocation (two module counts per roof; the variants
// of each roof share one solar field).
func BenchmarkRunBatch(b *testing.B) {
	b.ReportAllocs()
	scs, err := scenario.All()
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []Config
	for _, sc := range scs {
		for _, n := range []int{16, 32} {
			cfgs = append(cfgs, Config{Scenario: sc, Modules: n})
		}
	}
	for i := 0; i < b.N; i++ {
		runs, err := RunBatch(cfgs, BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, br := range runs {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
}

// BenchmarkDistrictSharedHorizon measures the full district sweep over
// the synthetic neighborhood tile under the three horizon regimes: the
// default shared tile map (one BuildRegions march sliced per roof),
// the -per-roof-horizon escape hatch (one march per roof — the pre-PR6
// behaviour), and the shared map restored from a warm artifact cache
// (the streamed-service steady state, zero marches). The number of
// horizon ray-marches per sweep is reported as a custom metric so the
// build-once contract shows up in the numbers.
func BenchmarkDistrictSharedHorizon(b *testing.B) {
	b.ReportAllocs()
	tile := district.SyntheticNeighborhood()
	run := func(b *testing.B, cfg DistrictConfig) {
		b.Helper()
		before := horizon.BuildCount()
		for i := 0; i < b.N; i++ {
			cfg.Tile = tile
			if _, err := RunDistrict(cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(horizon.BuildCount()-before)/float64(b.N), "horizon-builds/op")
	}
	b.Run("shared-cold", func(b *testing.B) { run(b, DistrictConfig{}) })
	b.Run("perroof-cold", func(b *testing.B) { run(b, DistrictConfig{PerRoofHorizon: true}) })
	b.Run("shared-warm", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := RunDistrict(DistrictConfig{Tile: tile, CacheDir: dir}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, DistrictConfig{CacheDir: dir})
	})
}

// BenchmarkWarmRemoteCache measures the district sweep served from a
// warm REMOTE blob tier through a cold local cache — the fleet
// scale-out steady state, where a fresh worker's first request pulls
// every artifact from a peer's /v1/blobs mount over HTTP instead of
// ray-marching. Each iteration starts with an empty local directory so
// every artifact crosses the wire; horizon-builds/op stays 0 because
// the remote tier absorbs all misses.
func BenchmarkWarmRemoteCache(b *testing.B) {
	b.ReportAllocs()
	tile := district.SyntheticNeighborhood()
	peer, err := fieldcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := RunDistrict(DistrictConfig{Tile: tile, Cache: peer}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(blobstore.Handler(peer.Local()))
	defer srv.Close()
	before := horizon.BuildCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		remote, err := blobstore.OpenHTTP(srv.URL, blobstore.HTTPOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cache, err := fieldcache.OpenTiered(fieldcache.Config{Dir: b.TempDir(), Remote: remote})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := RunDistrict(DistrictConfig{Tile: tile, Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(horizon.BuildCount()-before)/float64(b.N), "horizon-builds/op")
}

// BenchmarkHorizonBuild measures the horizon-map precomputation — the
// dominant setup cost of the shadow model (the GIS stage the paper
// runs once per roof).
func BenchmarkHorizonBuild(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[0]
	for i := 0; i < b.N; i++ {
		if _, err := horizon.Build(st.sc.Scene.Raster, st.sc.Scene.RoofRect,
			horizon.Options{Sectors: 32, MaxDistanceM: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatePlacement measures the topology-aware energy
// evaluation of one N=32 placement (the inner loop of every
// experiment).
func BenchmarkEvaluatePlacement(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	mod := pvmodel.PVMF165EB3()
	spec := wiring.AWG10(scenario.CellSizeM)
	pl, err := floorplan.Plan(st.suit, st.sc.Suitable, planOpts(b, st, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floorplan.Evaluate(st.ev, mod, pl, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonthlyProfile measures the monthly-energy extraction.
func BenchmarkMonthlyProfile(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	mod := pvmodel.PVMF165EB3()
	pl, err := floorplan.Plan(st.suit, st.sc.Suitable, planOpts(b, st, 32))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floorplan.MonthlyEnergy(st.ev, mod, pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOrientation compares fixed-orientation against
// free-rotation placement (extension study), reporting the
// suitability gain rotation buys.
func BenchmarkAblationOrientation(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[2]
	for _, rotate := range []bool{false, true} {
		name := "fixed"
		if rotate {
			name = "rotating"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			opts := planOpts(b, st, 32)
			opts.AllowRotation = rotate
			var suitSum float64
			for i := 0; i < b.N; i++ {
				pl, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
				if err != nil {
					b.Fatal(err)
				}
				suitSum = pl.SuitabilitySum
			}
			b.ReportMetric(suitSum, "suit_sum")
		})
	}
}

// BenchmarkBaselineHierarchy places random, compact and greedy on the
// same roof, reporting each one's suitability total — the sanity
// ordering random <= compact <= greedy.
func BenchmarkBaselineHierarchy(b *testing.B) {
	b.ReportAllocs()
	st := roofStates(b)[1]
	opts := planOpts(b, st, 16)
	b.Run("random", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			pl, err := floorplan.PlanRandom(st.suit, st.sc.Suitable, opts, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			s = pl.SuitabilitySum
		}
		b.ReportMetric(s, "suit_sum")
	})
	b.Run("compact", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			pl, err := floorplan.PlanCompact(st.suit, st.sc.Suitable, opts)
			if err != nil {
				b.Fatal(err)
			}
			s = pl.SuitabilitySum
		}
		b.ReportMetric(s, "suit_sum")
	})
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			pl, err := floorplan.Plan(st.suit, st.sc.Suitable, opts)
			if err != nil {
				b.Fatal(err)
			}
			s = pl.SuitabilitySum
		}
		b.ReportMetric(s, "suit_sum")
	})
}

// writeCityASC writes an nx×ny-neighborhood-sized city to disk as an
// ESRI ASCII grid — the out-of-core pipeline's input: the file is
// indexed, never loaded whole. Only the corner block carries the
// synthetic neighborhood; the rest is open terrain, so the planned
// fleet stays constant while the raster area scales and any memory
// growth is attributable to ingestion, not to the retained plans.
func writeCityASC(b *testing.B, nx, ny int) string {
	b.Helper()
	pattern := district.SyntheticNeighborhood()
	city, err := dsm.NewRaster(nx*pattern.W(), ny*pattern.H(), pattern.CellSize())
	if err != nil {
		b.Fatal(err)
	}
	for y := 0; y < pattern.H(); y++ {
		for x := 0; x < pattern.W(); x++ {
			city.Set(geom.Cell{X: x, Y: y}, pattern.At(geom.Cell{X: x, Y: y}))
		}
	}
	path := filepath.Join(b.TempDir(), "city.asc")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := gis.FromRaster(city, 0, 0).WriteAsc(f); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkCityPipeline measures the out-of-core city sweep at 1× and
// 4× the raster area with a FIXED work-tile size, halo, raster-cache
// budget and planned fleet. The perf claim under test: peak heap is a
// function of the tile window (plus the constant fleet), not of city
// size — "peak-MB/op" must stay flat (within noise) as the raster
// quadruples, while a monolithic load would grow linearly (the
// "raster-MB" metric). Peak heap is sampled from a sidecar goroutine
// over the whole timed section and reported relative to the post-GC
// baseline.
func BenchmarkCityPipeline(b *testing.B) {
	for _, scale := range []struct {
		name   string
		nx, ny int
	}{{"1x", 1, 1}, {"4x", 2, 2}, {"16x", 4, 4}} {
		b.Run(scale.name, func(b *testing.B) {
			path := writeCityASC(b, scale.nx, scale.ny)
			const wantRoofs = 4
			rasterMB := float64(scale.nx*160*scale.ny*120) * 8 / 1e6

			// Peak-MB asserts the LIVE set, not GC scheduling: with the
			// default GOGC the collector lets transient per-tile garbage
			// pile up to a multiple of the live heap, which would scale
			// the sampled peak with tile count. An aggressive target
			// keeps sampled heap ≈ live set so the metric isolates what
			// the pipeline actually holds at once.
			oldGC := debug.SetGCPercent(10)
			defer debug.SetGCPercent(oldGC)
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			baseline := ms.HeapAlloc
			peak := baseline
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				var s runtime.MemStats
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
						runtime.ReadMemStats(&s)
						if s.HeapAlloc > peak {
							peak = s.HeapAlloc
						}
					}
				}
			}()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wr, err := gis.OpenWindowed(path, gis.WindowOptions{CacheBytes: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunCity(CityConfig{
					Source:    wr,
					TileCells: 80,
					HaloCells: 40, // fixed window: peak memory must not track city size
					Modules:   8, SkipBaseline: true,
				})
				if cerr := wr.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Plans) != wantRoofs {
					b.Fatalf("planned %d roofs, want %d", len(res.Plans), wantRoofs)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
			b.ReportMetric(float64(peak-baseline)/1e6, "peak-MB/op")
			b.ReportMetric(rasterMB, "raster-MB")
		})
	}
}

// BenchmarkEconomics prices the Table I headline configuration.
func BenchmarkEconomics(b *testing.B) {
	b.ReportAllocs()
	var npv float64
	for i := 0; i < b.N; i++ {
		a, err := econ.Assess(7.4, 32, 5.28, 30, econ.Residential2018(), econ.TurinFeedIn2018())
		if err != nil {
			b.Fatal(err)
		}
		npv = a.NPVUSD
	}
	b.ReportMetric(npv, "npv_usd")
}

// BenchmarkDistrictEconRanking measures the fleet economics pass in
// isolation: the district is planned once, then each iteration
// re-prices the fleet over the panel catalog, re-runs the greedy
// budget admission and re-ranks by NPV — the pass is idempotent by
// design, so re-applying it is exactly what -econ adds on top of a
// sweep. It must stay microseconds: economics never touches the
// physics hot path.
func BenchmarkDistrictEconRanking(b *testing.B) {
	res, err := RunDistrict(DistrictConfig{Tile: district.SyntheticNeighborhood()})
	if err != nil {
		b.Fatal(err)
	}
	cfg := EconConfig{Enabled: true, RankBy: RankByNPV, BudgetUSD: 40000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.applyEconomics(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res.Econ == nil || res.Econ.RoofsAdmitted == 0 {
		b.Fatal("econ pass admitted no roofs")
	}
	b.ReportMetric(float64(res.Econ.RoofsAdmitted), "roofs_admitted")
	b.ReportMetric(res.Econ.TotalNPVUSD, "fleet_npv_usd")
}
