package pvfloor

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/solar/field"
	"repro/internal/solar/horizon"
)

// TestRunBatchSharesFieldsAcrossVariants: runs over the same scenario
// and calendar must share one constructed solar field (the RunWithField
// amortisation), and every run must succeed with consistent physics.
func TestRunBatchSharesFieldsAcrossVariants(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Scenario: sc, Modules: 8},
		{Scenario: sc, Modules: 16},
		{Scenario: sc, Modules: 8, SkipBaseline: true, Label: "no-baseline"},
	}
	runs, err := RunBatch(cfgs, BatchOptions{Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(cfgs) {
		t.Fatalf("%d runs for %d configs", len(runs), len(cfgs))
	}
	built := 0
	for i, br := range runs {
		if br.Err != nil {
			t.Fatalf("run %d (%s): %v", i, br.Name, br.Err)
		}
		if br.Index != i {
			t.Errorf("run %d reported index %d", i, br.Index)
		}
		if br.Result == nil || br.Result.Evaluator == nil {
			t.Fatalf("run %d: missing result", i)
		}
		if br.FieldBuilt {
			built++
		}
	}
	if built != 1 {
		t.Errorf("%d field builds for one scenario/calendar group, want 1", built)
	}
	// All three runs must hold the very same evaluator and share its
	// memoized statistics pass (one accumulation per field).
	ev := runs[0].Result.Evaluator
	for i, br := range runs[1:] {
		if br.Result.Evaluator != ev {
			t.Errorf("run %d did not reuse the group's field", i+1)
		}
		if br.Result.Stats != runs[0].Result.Stats {
			t.Errorf("run %d did not share the memoized statistics", i+1)
		}
	}
	// Names: derived and explicit labels.
	if runs[0].Name != "Residential/N=8" {
		t.Errorf("derived name = %q", runs[0].Name)
	}
	if runs[2].Name != "no-baseline" {
		t.Errorf("labelled name = %q", runs[2].Name)
	}
	// Physics consistency across the shared field.
	if !(runs[1].Result.ProposedEval.GrossMWh > runs[0].Result.ProposedEval.GrossMWh) {
		t.Error("16 modules must out-produce 8 on the shared field")
	}
	if runs[2].Result.Traditional != nil {
		t.Error("SkipBaseline variant must have no baseline")
	}
}

// TestRunBatchIsolatesFailures: a failing run must not abort the
// batch, and its error must be recorded in place.
func TestRunBatchIsolatesFailures(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Scenario: nil, Modules: 8}, // nil scenario
		{Scenario: sc, Modules: 7},  // not a multiple of 8
		{Scenario: sc, Modules: 8},  // fine
	}
	runs, err := RunBatch(cfgs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Err == nil {
		t.Error("nil scenario must fail its run")
	}
	if runs[1].Err == nil {
		t.Error("bad module count must fail its run")
	}
	if runs[2].Err != nil {
		t.Errorf("healthy run failed: %v", runs[2].Err)
	}
	if runs[2].Result == nil {
		t.Error("healthy run missing result")
	}
}

func TestRunBatchEmpty(t *testing.T) {
	if _, err := RunBatch(nil, BatchOptions{}); err == nil {
		t.Error("empty batch must error")
	}
}

// TestBatchTableI: the summary must contain one row per successful
// run and skip failures.
func TestBatchTableI(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := RunBatch([]Config{
		{Scenario: sc, Modules: 8},
		{Scenario: nil},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	table := BatchTableI(runs)
	if !strings.Contains(table, "Residential") {
		t.Errorf("summary missing roof row:\n%s", table)
	}
	if lines := strings.Count(table, "\n"); lines != 4 { // header(2) + rule + 1 row
		t.Errorf("summary has %d lines, want 4:\n%s", lines, table)
	}
}

// TestRunBatchWarmCacheSkipsRecomputation: with a persistent cache
// directory, a second batch over the same unchanged roof must restore
// horizon maps and statistics from disk — no ray marching, no kernel
// pass — and produce bit-identical results.
func TestRunBatchWarmCacheSkipsRecomputation(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfgs := []Config{
		{Scenario: sc, Modules: 8, CacheDir: dir},
		{Scenario: sc, Modules: 16, CacheDir: dir},
	}
	cold, err := RunBatch(cfgs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range cold {
		if br.Err != nil {
			t.Fatalf("cold %s: %v", br.Name, br.Err)
		}
	}

	hb, sp := horizon.BuildCount(), field.StatsPassCount()
	warm, err := RunBatch(cfgs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range warm {
		if br.Err != nil {
			t.Fatalf("warm %s: %v", br.Name, br.Err)
		}
	}
	if got := horizon.BuildCount(); got != hb {
		t.Errorf("warm batch ray-marched %d horizon maps, want 0", got-hb)
	}
	if got := field.StatsPassCount(); got != sp {
		t.Errorf("warm batch executed %d statistics passes, want 0", got-sp)
	}
	if !warm[0].Result.Evaluator.HorizonFromCache() {
		t.Error("warm batch field must report a cached horizon")
	}
	for i := range cfgs {
		c, w := cold[i].Result, warm[i].Result
		if c.ProposedEval.NetMWh() != w.ProposedEval.NetMWh() ||
			c.TraditionalEval.NetMWh() != w.TraditionalEval.NetMWh() {
			t.Errorf("run %d: warm energies differ from cold", i)
		}
		for j := range c.Stats.GPct {
			if math.Float64bits(c.Stats.GPct[j]) != math.Float64bits(w.Stats.GPct[j]) ||
				math.Float64bits(c.Stats.GMean[j]) != math.Float64bits(w.Stats.GMean[j]) ||
				math.Float64bits(c.Stats.TactPct[j]) != math.Float64bits(w.Stats.TactPct[j]) {
				t.Fatalf("run %d: cached statistics differ from cold at cell %d", i, j)
			}
		}
	}
}

// TestRunBatchConcurrentSharedCacheDir: concurrent batches sharing one
// cache directory must be race-clean (run under -race in CI) and all
// succeed with consistent results.
func TestRunBatchConcurrentSharedCacheDir(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfgs := []Config{
		{Scenario: sc, Modules: 8, CacheDir: dir},
		{Scenario: sc, Modules: 16, CacheDir: dir},
	}
	const callers = 3
	results := make([][]BatchRun, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs, err := RunBatch(cfgs, BatchOptions{Concurrency: 2})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = runs
		}(i)
	}
	wg.Wait()
	for i, runs := range results {
		if runs == nil {
			t.Fatalf("caller %d produced no runs", i)
		}
		for _, br := range runs {
			if br.Err != nil {
				t.Fatalf("caller %d run %s: %v", i, br.Name, br.Err)
			}
		}
		if got, want := runs[0].Result.ProposedEval.NetMWh(), results[0][0].Result.ProposedEval.NetMWh(); got != want {
			t.Errorf("caller %d: proposed %v differs from caller 0's %v", i, got, want)
		}
	}
}

// TestRunBatchCancellation: cancelling the batch context after the
// first completed run must stop the fan-out — with a serial pool, at
// most the run already in flight finishes and every later run is
// recorded (and reported through Progress) with the context error.
func TestRunBatchCancellation(t *testing.T) {
	sc, err := Residential()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = Config{Scenario: sc, Modules: 8, SkipBaseline: true}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var events []BatchRun
	runs, err := RunBatch(cfgs, BatchOptions{
		Concurrency: 1,
		Context:     ctx,
		Progress: func(br BatchRun) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, br)
			if len(events) == 1 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(cfgs) {
		t.Fatalf("got %d runs, want %d", len(runs), len(cfgs))
	}
	if len(events) != len(cfgs) {
		t.Fatalf("Progress reported %d runs, want every one of %d", len(events), len(cfgs))
	}
	if runs[0].Err != nil || runs[0].Result == nil {
		t.Fatalf("first run should have completed: %+v", runs[0].Err)
	}
	var completed, cancelled int
	for i, br := range runs {
		if br.Index != i {
			t.Errorf("runs[%d].Index = %d", i, br.Index)
		}
		switch {
		case br.Err == nil && br.Result != nil:
			completed++
		case br.Err != nil && errors.Is(br.Err, context.Canceled):
			if br.Result != nil {
				t.Errorf("cancelled run %d carries a result", i)
			}
			cancelled++
		default:
			t.Errorf("run %d in unexpected state: err=%v", i, br.Err)
		}
	}
	// The serial pool had exactly one run in flight when the
	// cancellation landed, so at most two complete in total.
	if completed > 2 {
		t.Errorf("%d runs completed after cancellation, want <= 2", completed)
	}
	if cancelled < len(cfgs)-2 {
		t.Errorf("only %d runs were cancelled, want >= %d", cancelled, len(cfgs)-2)
	}
}
