package pvfloor

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/solar/field"
)

// This file is the machine-readable district report: one JSON-ready
// struct tree shared by every surface that emits district results —
// cmd/pvdistrict -json and the pvserve streaming endpoints marshal
// the same types, so their outputs are byte-equivalent by
// construction and both stay pinned by the golden corpus.

// RectReport is a bounding rectangle in tile cells.
type RectReport struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

// NewRectReport converts a geometry rect.
func NewRectReport(r geom.Rect) RectReport {
	return RectReport{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
}

// RoofReport is the per-roof row of a district report.
type RoofReport struct {
	ID int `json:"id"`
	// Building groups segments extracted from one building component;
	// Segment numbers the plane within it (0 = single-plane building).
	Building       int        `json:"building,omitempty"`
	Segment        int        `json:"segment,omitempty"`
	Rect           RectReport `json:"rect"`
	Cells          int        `json:"cells"`
	SuitableCells  int        `json:"suitable_cells"`
	SlopeDeg       float64    `json:"slope_deg"`
	AspectDeg      float64    `json:"aspect_deg"`
	FitRMSM        float64    `json:"fit_rms_m"`
	MeanHeightM    float64    `json:"mean_height_m"`
	Rank           int        `json:"rank,omitempty"`
	Modules        int        `json:"modules,omitempty"`
	ProposedMWh    float64    `json:"proposed_mwh,omitempty"`
	TraditionalMWh float64    `json:"traditional_mwh,omitempty"`
	// GainPct is a pointer so a planned roof with exactly 0% gain
	// still serialises (omitempty on a float64 would drop the
	// legitimate zero); it is nil — and absent — only for unplanned
	// roofs.
	GainPct      *float64 `json:"gain_pct,omitempty"`
	WiringExtraM float64  `json:"wiring_extra_m,omitempty"`
	// Econ carries the roof's economics report when the run's
	// economics pass is enabled.
	Econ    *EconReport `json:"econ,omitempty"`
	Skipped string      `json:"skipped,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// DroppedReport records one rejected candidate region.
type DroppedReport struct {
	Rect   RectReport `json:"rect"`
	Cells  int        `json:"cells"`
	Reason string     `json:"reason"`
}

// EconTotalsReport aggregates the economics pass of a district/city
// run: the resolved objective plus capital and value totals over the
// admitted roofs.
type EconTotalsReport struct {
	RankBy           string  `json:"rank_by"`
	BudgetUSD        float64 `json:"budget_usd,omitempty"`
	RoofsAdmitted    int     `json:"roofs_admitted"`
	CapexUSD         float64 `json:"capex_usd"`
	NPVUSD           float64 `json:"npv_usd"`
	AnnualRevenueUSD float64 `json:"annual_revenue_usd"`
}

// NewEconTotalsReport converts the fleet summary (nil-safe).
func NewEconTotalsReport(f *FleetEcon) *EconTotalsReport {
	if f == nil {
		return nil
	}
	return &EconTotalsReport{
		RankBy:           string(f.RankBy),
		BudgetUSD:        f.BudgetUSD,
		RoofsAdmitted:    f.RoofsAdmitted,
		CapexUSD:         f.TotalCapexUSD,
		NPVUSD:           f.TotalNPVUSD,
		AnnualRevenueUSD: f.TotalAnnualRevenueUSD,
	}
}

// TotalsReport aggregates a district run. With a budget-capped
// economics pass the energy totals cover the admitted subset.
type TotalsReport struct {
	RoofsExtracted  int               `json:"roofs_extracted"`
	RoofsPlanned    int               `json:"roofs_planned"`
	ProposedMWh     float64           `json:"proposed_mwh"`
	TraditionalMWh  float64           `json:"traditional_mwh"`
	DistrictGainPct float64           `json:"district_gain_pct"`
	WiringExtraM    float64           `json:"wiring_extra_m"`
	Econ            *EconTotalsReport `json:"econ,omitempty"`
}

// DistrictReport is the machine-readable district report, ranked
// per-roof outcomes plus aggregate totals.
type DistrictReport struct {
	GroundZ   float64         `json:"ground_z"`
	CellSizeM float64         `json:"cell_size_m"`
	Roofs     []RoofReport    `json:"roofs"`
	Dropped   []DroppedReport `json:"dropped,omitempty"`
	Totals    TotalsReport    `json:"totals"`
}

// NewDistrictReport flattens a DistrictResult into its report form.
// Roofs appear in extraction (ID) order; Rank carries the best-first
// ranking (1 = best, 0 = unplanned).
func NewDistrictReport(res *DistrictResult) DistrictReport {
	out := DistrictReport{
		GroundZ:   res.Extraction.GroundZ,
		CellSizeM: res.Extraction.CellSizeM,
		Totals: TotalsReport{
			RoofsExtracted:  len(res.Plans),
			RoofsPlanned:    len(res.Ranked),
			ProposedMWh:     res.TotalProposedMWh,
			TraditionalMWh:  res.TotalTraditionalMWh,
			DistrictGainPct: res.DistrictGainPct(),
			WiringExtraM:    res.TotalWiringExtraM,
			Econ:            NewEconTotalsReport(res.Econ),
		},
	}
	rank := make(map[int]int, len(res.Ranked))
	for i, pi := range res.Ranked {
		rank[pi] = i + 1
	}
	for i := range res.Plans {
		rp := &res.Plans[i]
		rj := RoofReport{
			ID:            rp.Roof.ID,
			Building:      rp.Roof.Building,
			Segment:       rp.Roof.Segment,
			Rect:          NewRectReport(rp.Roof.Rect),
			Cells:         rp.Roof.Cells,
			SuitableCells: rp.Roof.Suitable.Count(),
			SlopeDeg:      rp.Roof.Plane.SlopeDeg,
			AspectDeg:     rp.Roof.Plane.AspectDeg,
			FitRMSM:       rp.Roof.FitRMSM,
			MeanHeightM:   rp.Roof.MeanHeightM,
			Rank:          rank[i],
			Skipped:       rp.Skipped,
		}
		if o := rp.Outcome(); o.Planned {
			gain := o.GainPct
			rj.Modules = rp.Modules
			rj.ProposedMWh = o.ProposedMWh
			rj.TraditionalMWh = o.TraditionalMWh
			rj.GainPct = &gain
			rj.WiringExtraM = o.WiringExtraM
			rj.Econ = rp.Econ
		} else if o.RunErr != "" {
			rj.Error = o.RunErr
		}
		out.Roofs = append(out.Roofs, rj)
	}
	for _, d := range res.Extraction.Dropped {
		out.Dropped = append(out.Dropped, DroppedReport{
			Rect: NewRectReport(d.Rect), Cells: d.Cells, Reason: string(d.Reason),
		})
	}
	return out
}

// CityTileReport summarises one work tile of a city report.
type CityTileReport struct {
	Index   int        `json:"index"`
	Core    RectReport `json:"core"`
	Window  RectReport `json:"window"`
	Skipped string     `json:"skipped,omitempty"`
	// GroundZ is a pointer so a tile whose detected ground sits at
	// exactly 0 m still serialises (omitempty on a float64 would drop
	// the legitimate zero); it is nil — and absent — only for tiles
	// that never ran (skipped or failed).
	GroundZ *float64 `json:"ground_z,omitempty"`
	Roofs   int      `json:"roofs"`
	// Attempts appears only when the tile needed retries (>1).
	Attempts int `json:"attempts,omitempty"`
	// Failed carries the final error of a tile that exhausted its
	// retries; its roofs are absent from the report.
	Failed string `json:"failed,omitempty"`
}

// CityRoofReport is a district roof row plus the work tile that owned
// (and planned) it. Rect coordinates are city cells.
type CityRoofReport struct {
	RoofReport
	Tile int `json:"tile"`
}

// CityReport is the machine-readable city report: the district report
// shape with tile provenance and the resolved partitioning, shared by
// cmd/pvdistrict -city -json and the pvserve /v1/city endpoint.
type CityReport struct {
	Bounds    RectReport       `json:"bounds"`
	CellSizeM float64          `json:"cell_size_m"`
	TileCells int              `json:"tile_cells"`
	HaloCells int              `json:"halo_cells"`
	Tiles     []CityTileReport `json:"tiles"`
	Roofs     []CityRoofReport `json:"roofs"`
	Dropped   []DroppedReport  `json:"dropped,omitempty"`
	Totals    TotalsReport     `json:"totals"`
}

// NewCityReport flattens a CityResult into its report form. Roofs
// appear in city extraction order; Rank carries the best-first city
// ranking.
func NewCityReport(cr *CityResult) CityReport {
	out := CityReport{
		Bounds:    NewRectReport(cr.Bounds),
		CellSizeM: cr.CellSizeM,
		TileCells: cr.TileCells,
		HaloCells: cr.HaloCells,
		Totals: TotalsReport{
			RoofsExtracted:  len(cr.Plans),
			RoofsPlanned:    len(cr.Ranked),
			ProposedMWh:     cr.TotalProposedMWh,
			TraditionalMWh:  cr.TotalTraditionalMWh,
			DistrictGainPct: cr.CityGainPct(),
			WiringExtraM:    cr.TotalWiringExtraM,
			Econ:            NewEconTotalsReport(cr.Econ),
		},
	}
	for _, ti := range cr.Tiles {
		tr := CityTileReport{
			Index: ti.Index, Core: NewRectReport(ti.Core), Window: NewRectReport(ti.Window),
			Skipped: ti.Skipped, Roofs: ti.Roofs, Failed: ti.Failed,
		}
		if ti.Skipped == "" && ti.Failed == "" {
			gz := ti.GroundZ
			tr.GroundZ = &gz
		}
		if ti.Attempts > 1 {
			tr.Attempts = ti.Attempts
		}
		out.Tiles = append(out.Tiles, tr)
	}
	rank := make(map[int]int, len(cr.Ranked))
	for i, pi := range cr.Ranked {
		rank[pi] = i + 1
	}
	for i := range cr.Plans {
		cp := &cr.Plans[i]
		rj := RoofReport{
			ID:            cp.Roof.ID,
			Building:      cp.Roof.Building,
			Segment:       cp.Roof.Segment,
			Rect:          NewRectReport(cp.Roof.Rect),
			Cells:         cp.Roof.Cells,
			SuitableCells: cp.Roof.Suitable.Count(),
			SlopeDeg:      cp.Roof.Plane.SlopeDeg,
			AspectDeg:     cp.Roof.Plane.AspectDeg,
			FitRMSM:       cp.Roof.FitRMSM,
			MeanHeightM:   cp.Roof.MeanHeightM,
			Rank:          rank[i],
			Skipped:       cp.Skipped,
		}
		if o := cp.Outcome(); o.Planned {
			gain := o.GainPct
			rj.Modules = cp.Modules
			rj.ProposedMWh = o.ProposedMWh
			rj.TraditionalMWh = o.TraditionalMWh
			rj.GainPct = &gain
			rj.WiringExtraM = o.WiringExtraM
			rj.Econ = cp.Econ
		} else if o.RunErr != "" {
			rj.Error = o.RunErr
		}
		out.Roofs = append(out.Roofs, CityRoofReport{RoofReport: rj, Tile: cp.Tile})
	}
	for _, d := range cr.Dropped {
		out.Dropped = append(out.Dropped, DroppedReport{
			Rect: NewRectReport(d.Rect), Cells: d.Cells, Reason: string(d.Reason),
		})
	}
	return out
}

// GPctDigest reduces per-cell irradiance statistics to a short hex
// digest of the exact float bit patterns (NaN cells included, so
// suitability-mask drift is caught too). The golden corpus and the
// pvserve progress events use it to pin the statistics pass without
// shipping the full matrix.
func GPctDigest(cs *field.CellStats) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(cs.Pct))
	h.Write(buf[:])
	for _, v := range cs.GPct {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
