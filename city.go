package pvfloor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/district"
	"repro/internal/dsm"
	"repro/internal/fieldcache"
	"repro/internal/geom"
	"repro/internal/scenario"
	"repro/internal/solar/horizon"
	"repro/internal/timegrid"
)

// ErrInterrupted is returned by RunCity when a Drain request stopped
// the run before every tile completed. The checkpoint (when
// configured) holds every tile that finished; re-running with the
// same checkpoint resumes where the run left off.
var ErrInterrupted = errors.New("pvfloor: city run interrupted")

// CitySource serves rectangular windows of a city-scale DSM. The
// windowed ASC reader (gis.WindowedReader) and the in-memory adapter
// (gis.RasterSource) both satisfy it. Window must set the returned
// raster's origin to rect's anchor so metric physics over the window
// is bit-identical to the full grid, and must be safe for concurrent
// use — RunCity's tile workers share one source.
type CitySource interface {
	// Bounds is the full city rectangle in cells.
	Bounds() geom.Rect
	// CellSize is the grid pitch in metres.
	CellSize() float64
	// Window materialises rect (which lies inside Bounds) as a raster
	// plus NODATA mask (nil = full coverage).
	Window(rect geom.Rect) (*dsm.Raster, *geom.Mask, error)
}

// CityConfig parameterises a city-scale run: the DSM is partitioned
// into TileCells×TileCells core tiles, each materialised with a halo
// of HaloCells of surrounding context and swept through the district
// pipeline, with seam roofs deduplicated by footprint-centroid
// ownership. Peak memory is O(window × TileWorkers) plus the source's
// cache budget — independent of city size.
type CityConfig struct {
	// Source serves DSM windows (required).
	Source CitySource
	// TileCells is the core tile edge length in cells (default 512).
	TileCells int
	// HaloCells is the overlap margin materialised around each core
	// tile. It must cover the horizon's shadow reach — and the largest
	// building footprint — for tiled results to match a monolithic
	// run. 0 derives it from the run's horizon options (shadow reach /
	// cell size); negative forces no halo.
	HaloCells int
	// TileWorkers bounds how many tiles are in flight at once
	// (default 1: tiles stream sequentially while each tile's roofs
	// plan in parallel via Concurrency, the bounded-memory sweet
	// spot). Raising it overlaps window IO with planning at the cost
	// of proportionally more resident windows.
	TileWorkers int

	// The remaining knobs mirror DistrictConfig and are applied to
	// every tile's district run.
	Extract        district.Options
	Site           district.SiteConfig
	Modules        int
	MaxModules     int
	Fidelity       Fidelity
	Grid           *timegrid.Grid
	Optimizer      OptimizerConfig
	SkipBaseline   bool
	CacheDir       string
	Cache          *fieldcache.Cache
	PerRoofHorizon bool
	Concurrency    int
	FieldWorkers   int

	// Economics switches the stitched city result into
	// economics-aware fleet ranking (see EconConfig). The pass runs
	// once over the stitched city — never per tile — so a budget cap
	// spans the whole city and checkpoint-restored tiles price
	// identically to live ones.
	Economics EconConfig

	// TileRetries is the number of extra attempts a failed tile gets
	// before it is recorded as failed (0 = one attempt only). Tile
	// failures are isolated: a tile that exhausts its retries is
	// recorded in the result with its error while the rest of the
	// city completes — only cancellation aborts the whole run.
	TileRetries int
	// TileTimeout bounds each tile attempt (0 = unbounded). A
	// timed-out attempt counts against TileRetries.
	TileTimeout time.Duration
	// Backoff is the delay before the first retry, doubling per
	// attempt and capped at 5s (0 = 50ms).
	Backoff time.Duration
	// Checkpoint, when non-nil, makes the run resumable: every
	// terminal tile (planned, skipped or failed) is durably committed
	// before it counts, and a tile that already has a record is
	// replayed from it instead of re-run. A resumed run's stitched
	// result is byte-identical to the uninterrupted run it continues.
	Checkpoint CityCheckpoint
	// Drain, when non-nil, requests a graceful stop once closed: no
	// new tile starts, in-flight tiles finish (and checkpoint), and
	// RunCity returns ErrInterrupted — unless every tile had already
	// been dispatched, in which case the completed result is
	// returned. Context cancellation remains the hard abort.
	Drain <-chan struct{}
	// TileFault is a test seam for the fault-injection harness: when
	// non-nil it is consulted at the start of every tile attempt
	// (1-based) and a non-nil error fails that attempt as if the
	// pipeline had.
	TileFault func(tile, attempt int) error

	// Context, when non-nil, bounds the run: once cancelled no new
	// tile starts and in-flight tiles stop between roofs.
	Context context.Context
	// Progress, when non-nil, receives CityEvents: tile-started and
	// tile-finished per work tile plus every wrapped DistrictEvent
	// with roof geometry translated to city cells. Retried tiles
	// emit one tile-started per attempt; replayed (checkpointed)
	// tiles emit started+finished with no roof events in between.
	// Tiles run concurrently when TileWorkers > 1, so the callback
	// must be safe for concurrent use. Events never change the
	// result.
	Progress func(CityEvent)
}

// City-level progress milestones, alongside the district roof kinds.
const (
	// CityTileStarted fires when a work tile's window is about to be
	// materialised. Roof fields are zero.
	CityTileStarted DistrictEventKind = "tile-started"
	// CityTileFinished fires when a work tile's district run (or
	// skip) completed. Roof fields are zero.
	CityTileFinished DistrictEventKind = "tile-finished"
)

// CityEvent is one progress milestone of RunCity: either a tile
// lifecycle marker or a district event from inside a tile's run, with
// Roof.Rect translated to city cells (footprint masks stay
// roof-local). Index stays tile-local — final city IDs exist only
// after stitching.
type CityEvent struct {
	// Tile is the work-tile index (row-major over the tile grid);
	// Tiles is the total count.
	Tile, Tiles int
	// Core is the tile's owned region, Window the materialised
	// core+halo rectangle, both in city cells.
	Core, Window geom.Rect
	DistrictEvent
}

// CityTileInfo summarises one work tile of a city run.
type CityTileInfo struct {
	// Index is the row-major tile index.
	Index int
	// Core is the owned region, Window the materialised rectangle.
	Core, Window geom.Rect
	// Skipped explains why the tile never ran ("" = it ran; today
	// only "window entirely NODATA").
	Skipped string
	// GroundZ is the tile's ground estimate (0 when skipped).
	GroundZ float64
	// Roofs counts the owned roofs extracted from this tile.
	Roofs int
	// Attempts counts the attempts the tile took (1 = first try).
	Attempts int
	// Failed records the final error of a tile that exhausted its
	// retries ("" = the tile ran or was skipped). A failed tile owns
	// no roofs; the rest of the city still completes.
	Failed string
}

// CityPlan is one roof's outcome in city coordinates: the embedded
// RoofPlan's Roof.ID/Building are city-wide and Roof.Rect is in city
// cells; Tile says which work tile owned (and planned) it. Run.Name
// and Scenario keep their tile-local labels.
type CityPlan struct {
	RoofPlan
	Tile int
}

// CityResult aggregates a city run.
type CityResult struct {
	// Bounds echoes the city rectangle, CellSizeM the pitch.
	Bounds    geom.Rect
	CellSizeM float64
	// TileCells and HaloCells echo the resolved partitioning.
	TileCells, HaloCells int
	// Tiles describes every work tile, row-major.
	Tiles []CityTileInfo
	// Plans lists every owned roof in monolithic extraction order
	// (row-major by first footprint cell, segments in order), with
	// city-wide IDs and Building numbers.
	Plans []CityPlan
	// Ranked indexes Plans best-first (descending proposed net
	// energy, ties by index; with the economics pass, the configured
	// objective over the admitted subset).
	Ranked []int
	// Dropped lists rejected candidate regions in city cells, each
	// counted once (entries a tile rejected as owned-elsewhere are
	// the owning tile's to report), sorted by position.
	Dropped []district.Dropped
	// Totals sum over the successfully planned roofs (the admitted
	// subset when a budget cap is configured).
	TotalProposedMWh    float64
	TotalTraditionalMWh float64
	TotalWiringExtraM   float64
	// Econ summarises the economics pass (nil when disabled).
	Econ *FleetEcon
}

// CityGainPct returns the aggregate net-energy gain of the proposed
// placements over the traditional baselines, in percent.
func (cr *CityResult) CityGainPct() float64 {
	if cr.TotalTraditionalMWh == 0 {
		return 0
	}
	return (cr.TotalProposedMWh - cr.TotalTraditionalMWh) / cr.TotalTraditionalMWh * 100
}

// tileOutcome is one worker's raw product before stitching: the tile
// summary plus its window-local roof plans and drop records. Live
// tiles carry plans with full BatchRuns; tiles replayed from a
// checkpoint carry Restored outcomes — the stitch consumes both
// identically through RoofPlan.Outcome.
type tileOutcome struct {
	info    CityTileInfo
	plans   []RoofPlan
	dropped []district.Dropped
}

// RunCity sweeps a city-scale DSM tile by tile: each core tile is
// materialised with its halo through cfg.Source, swept by the
// district pipeline (extraction, shared tile horizon, concurrent
// planning, shrink retries), and the per-tile fleets are stitched
// into one city-wide ranked result. Components are deduplicated at
// seams by footprint-centroid ownership: every building is extracted
// and planned by exactly one tile, the one whose core contains its
// centroid, while the halo supplies the cross-seam geometry that
// shades it.
//
// With HaloCells at least the horizon's shadow reach (the default)
// plus the largest building extent, the stitched result is
// bit-identical to a monolithic RunDistrict over the full grid —
// extraction order, planes, energies and ranking — for every
// TileCells and TileWorkers value.
func RunCity(cfg CityConfig) (*CityResult, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("pvfloor: city run without a source")
	}
	bounds := cfg.Source.Bounds()
	cellSize := cfg.Source.CellSize()
	if bounds.Empty() || cellSize <= 0 {
		return nil, fmt.Errorf("pvfloor: city source reports empty grid %v (cell %g m)", bounds, cellSize)
	}
	if bounds.X0 != 0 || bounds.Y0 != 0 {
		return nil, fmt.Errorf("pvfloor: city bounds %v not anchored at the origin", bounds)
	}
	if cfg.Modules == 0 && cfg.MaxModules != 0 && cfg.MaxModules < 8 {
		return nil, fmt.Errorf("pvfloor: city MaxModules %d below one 8-module string (use 0 for the default)",
			cfg.MaxModules)
	}
	if cfg.Modules != 0 && (cfg.Modules < 8 || cfg.Modules%8 != 0) {
		return nil, fmt.Errorf("pvfloor: city Modules %d not a positive multiple of 8 (use 0 to auto-size)",
			cfg.Modules)
	}
	if cfg.Extract.Keep != nil {
		return nil, fmt.Errorf("pvfloor: city run owns Extract.Keep (seam deduplication)")
	}
	if err := cfg.Economics.Validate(); err != nil {
		return nil, err
	}
	tileCells := cfg.TileCells
	if tileCells <= 0 {
		tileCells = 512
	}
	halo := cfg.HaloCells
	if halo == 0 {
		halo = cfg.defaultHalo(cellSize)
	}
	if halo < 0 {
		halo = 0
	}
	workers := cfg.TileWorkers
	if workers <= 0 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	nx := (bounds.W() + tileCells - 1) / tileCells
	ny := (bounds.H() + tileCells - 1) / tileCells
	n := nx * ny
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make([]*tileOutcome, n)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, workers)
	drained := false
	for t := 0; t < n; t++ {
		if cctx.Err() != nil {
			break
		}
		if cfg.Drain != nil {
			select {
			case <-cfg.Drain:
				drained = true
			default:
			}
		}
		if drained {
			break
		}
		core := geom.Rect{
			X0: (t % nx) * tileCells, Y0: (t / nx) * tileCells,
			X1: (t%nx)*tileCells + tileCells, Y1: (t/nx)*tileCells + tileCells,
		}.Intersect(bounds)
		sem <- struct{}{}
		wg.Add(1)
		go func(t int, core geom.Rect) {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := cfg.resolveTile(cctx, t, n, core, bounds, halo)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("pvfloor: city tile %d (core %v): %w", t, core, err)
				}
				mu.Unlock()
				cancel()
				return
			}
			outcomes[t] = out
		}(t, core)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A drain that won the race against the last dispatches leaves
	// gaps; in-flight tiles have checkpointed, so a rerun with the
	// same checkpoint continues from here.
	for _, out := range outcomes {
		if out == nil {
			return nil, ErrInterrupted
		}
	}
	return stitchCity(cfg, bounds, cellSize, tileCells, halo, outcomes)
}

// defaultHalo derives the overlap margin from the run's horizon
// options: the shadow reach in cells, rounded up. Everything a cell's
// ray march can sample then lies inside its own window.
func (cfg CityConfig) defaultHalo(cellSize float64) int {
	var hopts horizon.Options
	if cfg.Fidelity != Full {
		hopts = scenario.FastHorizonOptions()
	}
	reach := hopts.Resolved(cellSize).MaxDistanceM
	return int(math.Ceil(reach / cellSize))
}

// resolveTile produces one tile's terminal outcome: replayed from the
// checkpoint when a usable record exists, otherwise run live with
// per-tile retry — and, when a checkpoint is configured, durably
// committed before the outcome counts (a Commit failure is fatal: an
// uncommitted "completed" tile would break resume equivalence).
func (cfg CityConfig) resolveTile(ctx context.Context, t, tiles int, core, bounds geom.Rect, halo int) (*tileOutcome, error) {
	window := geom.Rect{
		X0: core.X0 - halo, Y0: core.Y0 - halo,
		X1: core.X1 + halo, Y1: core.Y1 + halo,
	}.Intersect(bounds)
	emit := func(ev DistrictEvent) {
		if cfg.Progress != nil {
			cfg.Progress(CityEvent{Tile: t, Tiles: tiles, Core: core, Window: window, DistrictEvent: ev})
		}
	}
	if cfg.Checkpoint != nil {
		rec, err := cfg.Checkpoint.Lookup(t)
		if err != nil {
			return nil, fmt.Errorf("checkpoint lookup: %w", err)
		}
		if rec != nil {
			emit(DistrictEvent{Kind: CityTileStarted})
			emit(DistrictEvent{Kind: CityTileFinished})
			return restoreTile(rec), nil
		}
	}
	out, err := cfg.runTileRetrying(ctx, t, tiles, core, window, bounds, emit)
	if err != nil {
		return nil, err
	}
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.Commit(t, recordTile(out)); err != nil {
			return nil, fmt.Errorf("checkpoint commit: %w", err)
		}
	}
	emit(DistrictEvent{Kind: CityTileFinished})
	return out, nil
}

// runTileRetrying drives one tile through its attempt budget with
// capped exponential backoff between attempts. Cancellation aborts;
// every other exhaustion degrades to a recorded failure so the rest
// of the city completes.
func (cfg CityConfig) runTileRetrying(ctx context.Context, t, tiles int, core, window, bounds geom.Rect, emit func(DistrictEvent)) (*tileOutcome, error) {
	attempts := cfg.TileRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(cfg.retryDelay(attempt)):
			}
		}
		emit(DistrictEvent{Kind: CityTileStarted})
		out, err := cfg.runTileAttempt(ctx, t, core, window, bounds, attempt, emit)
		if err == nil {
			out.info.Attempts = attempt
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return &tileOutcome{info: CityTileInfo{
		Index: t, Core: core, Window: window,
		Attempts: attempts, Failed: lastErr.Error(),
	}}, nil
}

// retryDelay is the backoff before the given attempt (2 = first
// retry): Backoff (default 50ms) doubling per attempt, capped at 5s.
func (cfg CityConfig) retryDelay(attempt int) time.Duration {
	const maxDelay = 5 * time.Second
	delay := cfg.Backoff
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	for i := 2; i < attempt && delay < maxDelay; i++ {
		delay *= 2
	}
	if delay > maxDelay {
		delay = maxDelay
	}
	return delay
}

// runTileAttempt materialises one work tile's window and sweeps it
// through the district pipeline, bounded by TileTimeout when set.
func (cfg CityConfig) runTileAttempt(ctx context.Context, t int, core, window, bounds geom.Rect, attempt int, emit func(DistrictEvent)) (*tileOutcome, error) {
	if cfg.TileFault != nil {
		if err := cfg.TileFault(t, attempt); err != nil {
			return nil, err
		}
	}
	if cfg.TileTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.TileTimeout)
		defer cancel()
	}

	win, mask, err := cfg.Source.Window(window)
	if err != nil {
		return nil, err
	}
	out := &tileOutcome{info: CityTileInfo{Index: t, Core: core, Window: window}}
	if mask != nil && mask.Count() == window.Area() {
		out.info.Skipped = "window entirely NODATA"
		return out, nil
	}

	origin := window.Anchor()
	extract := cfg.Extract
	extract.SeamEdges = district.Edges{
		Left: window.X0 > bounds.X0, Top: window.Y0 > bounds.Y0,
		Right: window.X1 < bounds.X1, Bottom: window.Y1 < bounds.Y1,
	}
	extract.Keep = func(_ geom.Rect, cells []geom.Cell) bool {
		return centroidOwned(cells, origin, core)
	}

	res, err := RunDistrict(DistrictConfig{
		Tile: win, NoData: mask,
		Extract: extract, Site: cfg.Site,
		Modules: cfg.Modules, MaxModules: cfg.MaxModules,
		Fidelity: cfg.Fidelity, Grid: cfg.Grid,
		Optimizer: cfg.Optimizer, SkipBaseline: cfg.SkipBaseline,
		CacheDir: cfg.CacheDir, Cache: cfg.Cache, PerRoofHorizon: cfg.PerRoofHorizon,
		Concurrency: cfg.Concurrency, FieldWorkers: cfg.FieldWorkers,
		Context: ctx,
		Progress: func(ev DistrictEvent) {
			ev.Roof.Rect = offsetRect(ev.Roof.Rect, origin)
			emit(ev)
		},
	})
	if err != nil {
		return nil, err
	}
	out.plans = res.Plans
	out.dropped = res.Extraction.Dropped
	out.info.GroundZ = res.Extraction.GroundZ
	out.info.Roofs = len(res.Extraction.Roofs)
	return out, nil
}

// centroidOwned reports whether the footprint's centroid lies inside
// core. cells are window-local, origin is the window anchor in city
// cells, core is in city cells. The test is exact: with cell centers
// at +0.5, centroid = (Σx + n/2)/n, so centroid ≥ X0 ⟺
// 2Σx + n ≥ 2nX0 — all integers, no float rounding at seams.
func centroidOwned(cells []geom.Cell, origin geom.Cell, core geom.Rect) bool {
	var sx, sy int64
	for _, c := range cells {
		sx += int64(origin.X + c.X)
		sy += int64(origin.Y + c.Y)
	}
	n := int64(len(cells))
	if n == 0 {
		return false
	}
	cx2, cy2 := 2*sx+n, 2*sy+n // centroid ×2n
	return cx2 >= 2*n*int64(core.X0) && cx2 < 2*n*int64(core.X1) &&
		cy2 >= 2*n*int64(core.Y0) && cy2 < 2*n*int64(core.Y1)
}

func offsetRect(r geom.Rect, d geom.Cell) geom.Rect {
	return geom.Rect{X0: r.X0 + d.X, Y0: r.Y0 + d.Y, X1: r.X1 + d.X, Y1: r.Y1 + d.Y}
}

// firstFootprintCell returns the roof's first footprint cell in
// row-major order, in city cells — the deterministic sort key that
// reproduces monolithic extraction order across tiles (components are
// discovered by row-major flood-fill seeding).
func firstFootprintCell(roof district.Roof) geom.Cell {
	for y := 0; y < roof.Footprint.H(); y++ {
		for x := 0; x < roof.Footprint.W(); x++ {
			if roof.Footprint.Get(geom.Cell{X: x, Y: y}) {
				return geom.Cell{X: roof.Rect.X0 + x, Y: roof.Rect.Y0 + y}
			}
		}
	}
	return roof.Rect.Anchor()
}

// stitchCity merges per-tile outcomes into the city-wide result:
// roofs in monolithic extraction order with renumbered IDs and
// buildings, a global ranking, and deduplicated drop records.
func stitchCity(cfg CityConfig, bounds geom.Rect, cellSize float64, tileCells, halo int, outcomes []*tileOutcome) (*CityResult, error) {
	cr := &CityResult{
		Bounds: bounds, CellSizeM: cellSize,
		TileCells: tileCells, HaloCells: halo,
		Tiles: make([]CityTileInfo, 0, len(outcomes)),
	}
	// One building group per (tile, tile-local building number).
	type group struct {
		first   geom.Cell // min first-footprint-cell over members
		members []CityPlan
	}
	var groups []*group
	index := map[[2]int]*group{}
	for _, out := range outcomes {
		if out == nil { // cancelled before this tile ran
			continue
		}
		cr.Tiles = append(cr.Tiles, out.info)
		origin := out.info.Window.Anchor()
		for _, rp := range out.plans {
			rp.Roof.Rect = offsetRect(rp.Roof.Rect, origin)
			key := [2]int{out.info.Index, rp.Roof.Building}
			g, ok := index[key]
			if !ok {
				g = &group{first: geom.Cell{X: bounds.X1, Y: bounds.Y1}}
				index[key] = g
				groups = append(groups, g)
			}
			if f := firstFootprintCell(rp.Roof); cellBefore(f, g.first) {
				g.first = f
			}
			g.members = append(g.members, CityPlan{RoofPlan: rp, Tile: out.info.Index})
		}
		for _, d := range out.dropped {
			if d.Reason == district.DropNotOwned {
				continue // the owning tile reports it with its real fate
			}
			d.Rect = offsetRect(d.Rect, origin)
			cr.Dropped = append(cr.Dropped, d)
		}
	}
	sort.SliceStable(groups, func(a, b int) bool { return cellBefore(groups[a].first, groups[b].first) })
	for gi, g := range groups {
		sort.SliceStable(g.members, func(a, b int) bool {
			return g.members[a].Roof.Segment < g.members[b].Roof.Segment
		})
		for _, m := range g.members {
			m.Roof.Building = gi + 1
			m.Roof.ID = len(cr.Plans) + 1
			cr.Plans = append(cr.Plans, m)
		}
	}
	sort.SliceStable(cr.Dropped, func(a, b int) bool {
		ra, rb := cr.Dropped[a].Rect, cr.Dropped[b].Rect
		if ra.Y0 != rb.Y0 {
			return ra.Y0 < rb.Y0
		}
		if ra.X0 != rb.X0 {
			return ra.X0 < rb.X0
		}
		return cr.Dropped[a].Reason < cr.Dropped[b].Reason
	})

	// Totals and ranking read the flattened Outcome so live and
	// checkpoint-restored plans stitch identically.
	net := make([]float64, len(cr.Plans))
	for i := range cr.Plans {
		cp := &cr.Plans[i]
		o := cp.Outcome()
		if !o.Planned {
			continue
		}
		net[i] = o.ProposedMWh
		cr.Ranked = append(cr.Ranked, i)
		cr.TotalProposedMWh += o.ProposedMWh
		cr.TotalTraditionalMWh += o.TraditionalMWh
		cr.TotalWiringExtraM += o.WiringExtraM
	}
	sort.SliceStable(cr.Ranked, func(a, b int) bool {
		ea, eb := net[cr.Ranked[a]], net[cr.Ranked[b]]
		if ea != eb {
			return ea > eb
		}
		return cr.Ranked[a] < cr.Ranked[b]
	})
	if cfg.Economics.Enabled {
		if err := cr.applyEconomics(cfg.Economics); err != nil {
			return nil, err
		}
	}
	return cr, nil
}

func cellBefore(a, b geom.Cell) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// CityTable renders the ranked city report: the district table's
// format with tile provenance, plus per-tile and aggregate totals.
func CityTable(cr *CityResult) string {
	dr := &DistrictResult{
		Plans:               make([]RoofPlan, len(cr.Plans)),
		Ranked:              cr.Ranked,
		TotalProposedMWh:    cr.TotalProposedMWh,
		TotalTraditionalMWh: cr.TotalTraditionalMWh,
		TotalWiringExtraM:   cr.TotalWiringExtraM,
		Econ:                cr.Econ,
	}
	for i, cp := range cr.Plans {
		dr.Plans[i] = cp.RoofPlan
	}
	out := DistrictTable(dr)
	ran, failed := 0, 0
	for _, ti := range cr.Tiles {
		switch {
		case ti.Failed != "":
			failed++
		case ti.Skipped == "":
			ran++
		}
	}
	out += fmt.Sprintf("City: %v at %g m/cell, %d/%d tiles swept (tile %d cells, halo %d), %d roofs owned\n",
		cr.Bounds, cr.CellSizeM, ran, len(cr.Tiles), cr.TileCells, cr.HaloCells, len(cr.Plans))
	if failed > 0 {
		out += fmt.Sprintf("WARNING: %d tile(s) failed after exhausting retries; their roofs are missing above\n", failed)
	}
	return out
}
