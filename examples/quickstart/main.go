// Quickstart reproduces the paper's Fig. 1 motivation on a synthetic
// surface: eight modules placed the traditional way (one compact
// block) versus the paper's sparse greedy placement, on a grid whose
// suitability has bright pockets a rigid block cannot reach. It runs
// in milliseconds and prints both placements plus their suitability
// totals.
package main

import (
	"fmt"
	"log"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/panel"
	"repro/internal/render"
)

func main() {
	const w, h = 72, 32

	// A conceptual irradiance-suitability field (Fig. 1's darker
	// cells): a broad gradient plus bright pockets and a shaded band.
	suit := &floorplan.Suitability{W: w, H: h, S: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 40.0 + 0.4*float64(x) // west-east gradient
			switch {
			case x > 8 && x < 22 && y > 4 && y < 12: // bright pocket NW
				v += 45
			case x > 50 && y > 20: // bright pocket SE
				v += 40
			case y >= 14 && y <= 17: // shaded band across the middle
				v -= 30
			}
			suit.S[y*w+x] = v
		}
	}
	mask := geom.NewMask(w, h)
	mask.Fill(true)
	// A vent stack blocks part of the surface.
	mask.SetRect(geom.Rect{X0: 34, Y0: 2, X1: 40, Y1: 8}, false)

	opts := floorplan.Options{
		Shape:    floorplan.ModuleShape{W: 8, H: 4}, // 1.6 m x 0.8 m on the 0.2 m grid
		Topology: panel.Topology{SeriesPerString: 4, Strings: 2},
		// Fig. 1 is "clearly only conceptual" (paper §II-A): the point
		// is reaching both bright pockets, so the locality filter that
		// keeps real placements wiring-friendly is disabled here.
		Policy: floorplan.PolicyNone,
	}

	traditional, err := floorplan.PlanCompact(suit, mask, opts)
	if err != nil {
		log.Fatalf("traditional placement: %v", err)
	}
	sparse, err := floorplan.Plan(suit, mask, opts)
	if err != nil {
		log.Fatalf("sparse placement: %v", err)
	}

	fmt.Println("Suitability field (bright = better):")
	fmt.Println(render.HeatmapASCII(render.Field{W: w, H: h, At: suit.At}, 72))
	fmt.Println("Fig. 1(a) — traditional compact placement:")
	fmt.Println(render.PlacementASCII(mask, traditional, 72))
	fmt.Println("Fig. 1(b) — sparse placement from the greedy floorplanner:")
	fmt.Println(render.PlacementASCII(mask, sparse, 72))
	fmt.Printf("suitability totals: traditional %.1f, sparse %.1f (%+.1f%%)\n",
		traditional.SuitabilitySum, sparse.SuitabilitySum,
		(sparse.SuitabilitySum-traditional.SuitabilitySum)/traditional.SuitabilitySum*100)
}
