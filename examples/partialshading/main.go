// Partialshading demonstrates the mismatch physics that motivates the
// paper's topology-aware placement (§II-B, §V-B): a series string is
// throttled to its weakest module's current, and bypass diodes only
// partially recover module-internal shading. The example contrasts a
// string with one shaded module against a string whose modules were
// chosen with matched irradiance — the paper's series-first argument.
package main

import (
	"fmt"
	"log"

	"repro/internal/panel"
	"repro/internal/pvmodel"
	"repro/internal/report"
)

func main() {
	mod := pvmodel.PVMF165EB3()
	topo := panel.Topology{SeriesPerString: 8, Strings: 1}

	uniform := make([]float64, 8)
	tact := make([]float64, 8)
	for i := range uniform {
		uniform[i] = 900
		tact[i] = 45
	}
	weak := append([]float64(nil), uniform...)
	weak[3] = 300 // one module in a pipe shadow

	stUniform, err := panel.At(topo, mod, uniform, tact)
	if err != nil {
		log.Fatal(err)
	}
	stWeak, err := panel.At(topo, mod, weak, tact)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Weak-module bottleneck in an 8-module series string (G=900 W/m², one module at 300):")
	tb := report.NewTable("configuration", "P panel (W)", "P per-module sum (W)", "mismatch loss")
	tb.AddRowf("matched string|%7.1f|%7.1f|%5.1f%%",
		stUniform.Power, stUniform.PerModuleSum, stUniform.MismatchLoss()*100)
	tb.AddRowf("one shaded module|%7.1f|%7.1f|%5.1f%%",
		stWeak.Power, stWeak.PerModuleSum, stWeak.MismatchLoss()*100)
	fmt.Println(tb)

	// Module-internal shading with bypass diodes (single-diode model).
	bp, err := pvmodel.NewBypassModule(pvmodel.PVMF165EB3Diode(), 2)
	if err != nil {
		log.Fatal(err)
	}
	full, err := bp.MPP(bp.UniformIrradiance(900), 45)
	if err != nil {
		log.Fatal(err)
	}
	half, err := bp.MPP([]float64{900, 250}, 45)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bypass diodes under module-internal shading (one of two substrings at 250 W/m²):")
	tb2 := report.NewTable("module state", "P_mpp (W)", "vs unshaded")
	tb2.AddRowf("uniform 900 W/m²|%6.1f|100.0%%", full.Power)
	tb2.AddRowf("half shaded|%6.1f|%5.1f%%", half.Power, half.Power/full.Power*100)
	fmt.Println(tb2)

	fmt.Println("Takeaway: grouping similar-irradiance positions into the same string")
	fmt.Println("(the paper's series-first enumeration) avoids the bottleneck entirely.")
}
