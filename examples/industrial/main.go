// Industrial runs the paper's headline experiment on one of the
// three Turin roofs (§V, Table I): full GIS pipeline — synthetic DSM,
// year-long solar simulation, suitability statistics — then the
// greedy sparse placement versus the traditional compact baseline,
// with yearly energies and wiring overhead. Fast fidelity by default
// (~seconds); pass -full for the paper's 15-minute full-year setup.
package main

import (
	"flag"
	"fmt"
	"log"

	pvfloor "repro"
	"repro/internal/report"
	"repro/internal/scenario"
)

func main() {
	roofNum := flag.Int("roof", 2, "paper roof to use (1, 2 or 3)")
	modules := flag.Int("n", 32, "number of PV modules (multiple of 8)")
	full := flag.Bool("full", false, "full fidelity: 15-minute full-year simulation")
	flag.Parse()

	var sc *scenario.Scenario
	var err error
	switch *roofNum {
	case 1:
		sc, err = pvfloor.Roof1()
	case 2:
		sc, err = pvfloor.Roof2()
	case 3:
		sc, err = pvfloor.Roof3()
	default:
		log.Fatalf("unknown roof %d", *roofNum)
	}
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}

	fid := pvfloor.Fast
	if *full {
		fid = pvfloor.Full
	}
	res, err := pvfloor.Run(pvfloor.Config{Scenario: sc, Modules: *modules, Fidelity: fid})
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	fmt.Printf("%s — %s\n", sc.Name, sc.Description)
	fmt.Printf("grid %dx%d cells (s = %.1f m), Ng = %d valid cells\n\n",
		sc.Suitable.W(), sc.Suitable.H(), scenario.CellSizeM, sc.Ng())

	fmt.Println("75th-percentile irradiance map (Fig. 6(b) style):")
	fmt.Println(res.SuitabilityMap(110))

	fmt.Println("Traditional compact placement (Fig. 7(a-c) style):")
	fmt.Println(res.TraditionalMap(110))
	fmt.Println("Proposed sparse placement (Fig. 7(d-f) style):")
	fmt.Println(res.ProposedMap(110))

	fmt.Println(report.FormatTableI([]report.TableIRow{res.TableIRow()}))
	fmt.Printf("mismatch loss: traditional %.1f%%, proposed %.1f%%\n",
		res.TraditionalEval.MismatchLoss()*100, res.ProposedEval.MismatchLoss()*100)
	fmt.Printf("wiring: %.1f m extra cable, %.3f MWh/yr loss, $%.0f\n",
		res.ProposedEval.WiringExtraM, res.ProposedEval.WiringLossMWh, res.ProposedEval.WiringCostUSD)
	for _, w := range res.Proposed.Warnings {
		fmt.Println("note:", w)
	}
}
