// Residential applies the floorplanner to the paper's title scenario:
// a home rooftop. A 10×6 m gabled-roof pitch with a chimney, dormer,
// antennas and garden trees is planned for an 8- or 16-module array;
// the program reports the energy gain over a conventional packed
// installation and the §V-C wiring-overhead assessment.
package main

import (
	"flag"
	"fmt"
	"log"

	pvfloor "repro"
	"repro/internal/econ"
	"repro/internal/floorplan"
	"repro/internal/inverter"
	"repro/internal/pvmodel"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/wiring"
)

func main() {
	modules := flag.Int("n", 8, "number of PV modules (multiple of 8)")
	full := flag.Bool("full", false, "full fidelity simulation")
	flag.Parse()

	sc, err := pvfloor.Residential()
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	fid := pvfloor.Fast
	if *full {
		fid = pvfloor.Full
	}
	res, err := pvfloor.Run(pvfloor.Config{Scenario: sc, Modules: *modules, Fidelity: fid})
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	fmt.Printf("%s — %s\n", sc.Name, sc.Description)
	fmt.Printf("suitable cells: %d of %d\n\n", sc.Ng(), sc.Suitable.W()*sc.Suitable.H())

	fmt.Println("Suitability map:")
	fmt.Println(res.SuitabilityMap(100))
	fmt.Println("Conventional packed installation:")
	fmt.Println(res.TraditionalMap(100))
	fmt.Println("GIS-driven sparse installation:")
	fmt.Println(res.ProposedMap(100))

	fmt.Printf("yearly production: packed %.3f MWh, sparse %.3f MWh (%+.1f%%)\n",
		res.TraditionalEval.NetMWh(), res.ProposedEval.NetMWh(), res.ImprovementPct())

	// §V-C overhead assessment at the paper's reference conditions.
	spec := wiring.AWG10(scenario.CellSizeM)
	assess, err := spec.Assess(res.Proposed.Rects, res.Proposed.Topology.SeriesPerString,
		4.0, 0.5, res.ProposedEval.GrossMWh)
	if err != nil {
		log.Fatalf("wiring assessment: %v", err)
	}
	fmt.Printf("wiring overhead: %.1f m extra cable, %.2f W at 4 A, %.2f kWh/yr, $%.0f (%.4f%%/m of production)\n\n",
		assess.ExtraCableM, assess.PowerLossW, assess.AnnualLossKWh, assess.CostUSD,
		assess.LossFractionPerM*100)

	// Monthly production profile (the monthly PV-potential view of
	// the GIS tools the paper surveys).
	monthly, err := floorplan.MonthlyEnergy(res.Evaluator, pvmodel.PVMF165EB3(), res.Proposed)
	if err != nil {
		log.Fatalf("monthly profile: %v", err)
	}
	names := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	mt := report.NewTable("month", "MWh")
	for i, m := range monthly {
		mt.AddRowf("%s|%0.3f", names[i], m)
	}
	fmt.Println(mt)
	if !*full {
		fmt.Println("(fast fidelity samples one day per ~month; run with -full for a calibrated monthly shape)")
	}

	// AC-side view: a typically sized string inverter (DC/AC ratio
	// ≈ 1.1) between the array and the meter.
	nameplateW := float64(*modules) * 165
	inv := inverter.Typical(nameplateW / 1.1)
	ac, dc, clipped, err := inverter.AnnualAC(res.Evaluator, pvmodel.PVMF165EB3(), res.Proposed, inv)
	if err != nil {
		log.Fatalf("inverter: %v", err)
	}
	fmt.Printf("AC side (%s, euro-eff %.1f%%): %.3f MWh AC from %.3f MWh DC, %.4f MWh clipped\n",
		inv.ModelName, inv.EuroEfficiency()*100, ac, dc, clipped)

	// Household economics: absolute system and the marginal value of
	// choosing the sparse placement.
	nameplateKW := nameplateW / 1000
	sys, err := econ.Assess(res.ProposedEval.NetMWh(), *modules, nameplateKW,
		res.ProposedEval.WiringExtraM, econ.Residential2018(), econ.TurinFeedIn2018())
	if err != nil {
		log.Fatalf("economics: %v", err)
	}
	fmt.Printf("system economics: capex $%.0f, revenue $%.0f/yr, payback %.1f yr, NPV $%.0f, LCOE %.3f $/kWh\n",
		sys.CapexUSD, sys.AnnualRevenueUSD, sys.SimplePaybackYears, sys.NPVUSD, sys.LCOEUSDPerKWh)
	marg, err := econ.CompareMarginal(res.TraditionalEval.NetMWh(), res.ProposedEval.NetMWh(),
		res.ProposedEval.WiringExtraM, econ.Residential2018(), econ.TurinFeedIn2018())
	if err != nil {
		log.Fatalf("marginal economics: %v", err)
	}
	fmt.Printf("sparse-vs-packed decision: +$%.0f cable buys +$%.0f/yr (payback %.2f yr, lifetime NPV %+.0f)\n",
		marg.ExtraCapexUSD, marg.ExtraAnnualRevenueUSD, marg.PaybackYears, marg.LifetimeNPVGainUSD)
}
