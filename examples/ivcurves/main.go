// Ivcurves regenerates the module characteristics behind the paper's
// Fig. 2(a) and Fig. 3: I-V curves of the Mitsubishi PV-MF165EB3
// under varying irradiance and temperature (single-diode physical
// model), the normalised V_oc / I_sc / P_max dependences the paper
// fits its empirical model from, and a side-by-side check of the two
// models at the maximum power point.
package main

import (
	"fmt"

	"repro/internal/pvmodel"
	"repro/internal/report"
)

func main() {
	dio := pvmodel.PVMF165EB3Diode()
	emp := pvmodel.PVMF165EB3()

	fmt.Println("Fig. 2(a) — I-V curves (single-diode model)")
	fmt.Println("\nIrradiance sweep at T_act = 25 °C (G in W/m²):")
	ivTable := report.NewTable("V (V)", "I@G=200", "I@G=600", "I@G=1000")
	curves := map[float64][]pvmodel.IVPoint{}
	for _, g := range []float64{200, 600, 1000} {
		curves[g] = dio.IVCurve(g, 25, 9)
	}
	for k := 0; k < 9; k++ {
		v := curves[1000][k].V
		ivTable.AddRowf("%5.1f|%6.2f|%6.2f|%6.2f",
			v, dio.Current(v, 200, 25), dio.Current(v, 600, 25), dio.Current(v, 1000, 25))
	}
	fmt.Println(ivTable)

	fmt.Println("Temperature sweep at G = 800 W/m²:")
	tTable := report.NewTable("T_act (°C)", "Voc (V)", "Isc (A)", "Pmax (W)")
	for _, tc := range []float64{0, 25, 50, 75} {
		op := dio.MPP(800, tc)
		tTable.AddRowf("%4.0f|%6.2f|%6.3f|%6.1f", tc, dio.Voc(800, tc), dio.Isc(800, tc), op.Power)
	}
	fmt.Println(tTable)

	fmt.Println("Fig. 3 — normalised characteristics vs irradiance (ref: 1000 W/m², 25 °C)")
	normTable := report.NewTable("G (W/m²)", "Voc/Voc_ref", "Isc/Isc_ref", "Pmax/Pmax_ref")
	vocRef, iscRef := dio.Voc(1000, 25), dio.Isc(1000, 25)
	pRef := dio.MPP(1000, 25).Power
	for _, g := range []float64{200, 400, 600, 800, 1000} {
		normTable.AddRowf("%5.0f|%6.3f|%6.3f|%6.3f",
			g, dio.Voc(g, 25)/vocRef, dio.Isc(g, 25)/iscRef, dio.MPP(g, 25).Power/pRef)
	}
	fmt.Println(normTable)

	fmt.Println("Empirical (paper §III-B1) vs single-diode MPP power (W):")
	cmp := report.NewTable("G", "T_act", "empirical", "diode", "Δ%")
	for _, g := range []float64{400, 700, 1000} {
		for _, tc := range []float64{15, 45} {
			pe := emp.MPP(g, tc).Power
			pd := dio.MPP(g, tc).Power
			cmp.AddRowf("%5.0f|%5.0f|%7.1f|%7.1f|%+5.1f", g, tc, pe, pd, (pe-pd)/pd*100)
		}
	}
	fmt.Println(cmp)
}
