package pvfloor_test

import (
	"fmt"
	"log"

	pvfloor "repro"
	"repro/internal/scenario"
)

// ExampleRun plans a home rooftop end to end: synthetic DSM, solar
// field, suitability statistics, greedy sparse placement versus the
// compact baseline, and the topology-aware energy evaluation.
func ExampleRun() {
	sc, err := pvfloor.Residential()
	if err != nil {
		log.Fatal(err)
	}
	res, err := pvfloor.Run(pvfloor.Config{Scenario: sc, Modules: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d modules\n", len(res.Proposed.Rects))
	fmt.Printf("feasible: %v\n",
		res.Proposed.OverlapFree() && res.Proposed.WithinMask(sc.Suitable))
	fmt.Printf("produces energy: %v\n", res.ProposedEval.GrossMWh > 0)
	// Output:
	// placed 8 modules
	// feasible: true
	// produces energy: true
}

// ExampleRunWithField amortises the expensive solar-field
// construction across several planning runs — here a module-count
// sweep over one roof.
func ExampleRunWithField() {
	sc, err := pvfloor.Residential()
	if err != nil {
		log.Fatal(err)
	}
	ev, err := sc.FieldFast(scenario.FastGrid())
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{8, 16} {
		res, err := pvfloor.RunWithField(pvfloor.Config{Scenario: sc, Modules: n}, ev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%d: placed %d modules\n", n, len(res.Proposed.Rects))
	}
	// Output:
	// N=8: placed 8 modules
	// N=16: placed 16 modules
}

// ExampleRunBatch fans several configuration variants out on the
// concurrent batch runner. Variants that share a scenario and
// calendar share one constructed solar field — note the single field
// build below — and results come back in input order regardless of
// scheduling.
func ExampleRunBatch() {
	sc, err := pvfloor.Residential()
	if err != nil {
		log.Fatal(err)
	}
	runs, err := pvfloor.RunBatch([]pvfloor.Config{
		{Scenario: sc, Modules: 8},
		{Scenario: sc, Modules: 16},
	}, pvfloor.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	built := 0
	for _, br := range runs {
		fmt.Printf("%s: ok=%v\n", br.Name, br.Err == nil)
		if br.FieldBuilt {
			built++
		}
	}
	fmt.Printf("fields built: %d\n", built)
	// Output:
	// Residential/N=8: ok=true
	// Residential/N=16: ok=true
	// fields built: 1
}
