package pvfloor

import (
	"fmt"

	"repro/internal/anneal"
	"repro/internal/optimize"
)

// Strategy names a placement-search strategy of the optimizer layer
// (internal/optimize). All strategies optimise the same shared
// objective — suitability sum minus a wiring-length penalty — and all
// are deterministic: greedy and bnb by construction, anneal per
// Seed, multistart per Seed for every worker count.
type Strategy string

const (
	// StrategyGreedy is the paper's §III-C ranked-candidate heuristic
	// (the default; an empty Strategy means greedy).
	StrategyGreedy Strategy = "greedy"
	// StrategyAnneal refines the greedy placement by simulated
	// annealing with O(1)-per-move incremental objective evaluation.
	StrategyAnneal Strategy = "anneal"
	// StrategyMultiStart runs Restarts independent annealing walks in
	// parallel over one precomputed score table and keeps the best.
	StrategyMultiStart Strategy = "multistart"
	// StrategyBranchBound is the exact branch-and-bound reference —
	// feasible only on reduced instances (small Modules counts).
	StrategyBranchBound Strategy = "bnb"
)

// ParseStrategy maps a user-facing string ("greedy", "anneal",
// "multistart", "bnb"/"branchbound", or "" for the default) to a
// Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "greedy":
		return StrategyGreedy, nil
	case "anneal":
		return StrategyAnneal, nil
	case "multistart":
		return StrategyMultiStart, nil
	case "bnb", "branchbound":
		return StrategyBranchBound, nil
	default:
		return "", fmt.Errorf("pvfloor: unknown optimizer strategy %q (want greedy, anneal, multistart or bnb)", s)
	}
}

// OptimizerConfig selects and tunes the placement strategy of a run.
// The zero value is the paper's greedy heuristic, preserving the
// pre-optimizer behaviour of Run exactly.
type OptimizerConfig struct {
	// Strategy picks the search ("" = greedy).
	Strategy Strategy
	// Seed fixes the stochastic strategies' random walks.
	Seed int64
	// Iterations is the annealing move budget per walk (0 = the
	// annealer's default, 20000).
	Iterations int
	// Restarts is the multistart walk count K (0 = 8).
	Restarts int
	// SearchWorkers bounds the multistart restart pool: 0 = one
	// worker per CPU, 1 = serial. The result is identical for every
	// value.
	SearchWorkers int
	// WiringWeight overrides the objective's cable price in objective
	// units per metre (0 = the default 0.05; to actually disable the
	// penalty set NoWiringPenalty).
	WiringWeight float64
	// NoWiringPenalty drops the wiring term from the refinement
	// objective entirely.
	NoWiringPenalty bool
	// MaxNodes caps the bnb search (0 = the opt package default).
	MaxNodes int
}

// label returns the strategy tag batch names carry ("" for the
// default greedy).
func (oc OptimizerConfig) label() string {
	if oc.Strategy == "" || oc.Strategy == StrategyGreedy {
		return ""
	}
	return string(oc.Strategy)
}

// placer resolves the config into an internal/optimize Placer.
func (oc OptimizerConfig) placer() (optimize.Placer, error) {
	var iterations *int
	if oc.Iterations != 0 {
		iterations = anneal.Ptr(oc.Iterations)
	}
	return optimize.ByStrategy(string(oc.Strategy), oc.Seed, iterations,
		oc.Restarts, oc.SearchWorkers, oc.MaxNodes)
}

// wiringWeight resolves the objective weight override (nil = default).
func (oc OptimizerConfig) wiringWeight() *float64 {
	if oc.NoWiringPenalty {
		return anneal.Ptr(0.0)
	}
	if oc.WiringWeight != 0 {
		return anneal.Ptr(oc.WiringWeight)
	}
	return nil
}
