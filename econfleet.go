package pvfloor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/econ"
	"repro/internal/report"
)

// This file revives internal/econ into the fleet objective: district
// and city runs can price every planned roof (capex, NPV, payback,
// LCOE over a mixed panel catalog), rank the fleet by economic value
// instead of raw energy, and greedily admit roofs against a capital
// budget — the "best N roofs for this budget" scenario. The pass is a
// pure post-processing step over flattened PlanOutcomes: it never
// touches the physics hot path, it is idempotent, and it prices
// checkpoint-restored plans byte-identically to live ones.

// simulatedModuleWatts is the STC nameplate of the module the physics
// pipeline simulates (the paper's Mitsubishi PV-MF165EB3, 165 W).
// Panel catalog classes scale the simulated energy by their nameplate
// ratio: a 330 W module in the same footprint under the same
// irradiance yields twice the energy of the simulated 165 W one.
const simulatedModuleWatts = 165.0

// PanelClass is one module class of the fleet's panel catalog.
type PanelClass struct {
	// Name labels the class in reports ("mono-330").
	Name string `json:"name"`
	// WattsSTC is the module nameplate at STC; the class's energy is
	// the simulated energy scaled by WattsSTC/165 (the simulated
	// module's nameplate).
	WattsSTC float64 `json:"watts_stc"`
	// ModuleUSD is the per-module price (0 = the cost model's
	// ModuleUSD).
	ModuleUSD float64 `json:"module_usd,omitempty"`
}

// DefaultPanelCatalog is the built-in two-class catalog: the paper's
// 165 W module and a 330 W class at a slightly better $/W — the
// "panel type is a decision variable" axis of the fleet objective.
func DefaultPanelCatalog() []PanelClass {
	return []PanelClass{
		{Name: "mono-165", WattsSTC: 165, ModuleUSD: 150},
		{Name: "mono-330", WattsSTC: 330, ModuleUSD: 290},
	}
}

// RankBy selects the fleet ranking objective.
type RankBy string

const (
	// RankByEnergy ranks by descending proposed net energy — exactly
	// today's ranking, bit-identical with economics on or off.
	RankByEnergy RankBy = "energy"
	// RankByNPV ranks by descending net present value of each roof's
	// selected panel class.
	RankByNPV RankBy = "npv"
	// RankByPayback ranks by ascending simple payback; roofs that
	// never pay back sort last.
	RankByPayback RankBy = "payback"
)

// ParseRankBy maps a CLI/API string onto a RankBy ("" = energy).
func ParseRankBy(s string) (RankBy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", string(RankByEnergy):
		return RankByEnergy, nil
	case string(RankByNPV):
		return RankByNPV, nil
	case string(RankByPayback):
		return RankByPayback, nil
	default:
		return "", fmt.Errorf("pvfloor: unknown rank-by %q (want energy, npv or payback)", s)
	}
}

// EconConfig switches district/city runs into economics-aware fleet
// ranking. The zero value disables the pass entirely — results are
// then byte-identical to an economics-free build.
type EconConfig struct {
	// Enabled turns the economics pass on.
	Enabled bool
	// Cost prices the capital items (zero value =
	// econ.Residential2018()).
	Cost econ.CostModel
	// Financials parameterises the discounted-cashflow analysis (zero
	// value = econ.TurinFeedIn2018()).
	Financials econ.Financials
	// Catalog is the panel catalog; every planned roof selects the
	// class maximising its NPV (nil = DefaultPanelCatalog()).
	Catalog []PanelClass
	// BudgetUSD caps the fleet's total capital. When positive, roofs
	// are admitted greedily in descending marginal-NPV-per-dollar
	// order (the Downstream-Power-Index style sequential placement)
	// until no remaining positive-NPV roof fits; only admitted roofs
	// are ranked and totalled. 0 = unbounded, every planned roof is
	// admitted.
	BudgetUSD float64
	// RankBy selects the ranking objective ("" = energy).
	RankBy RankBy
}

// resolved validates the config and fills the documented defaults.
func (ec EconConfig) resolved() (econ.CostModel, econ.Financials, []PanelClass, RankBy, error) {
	cost := ec.Cost
	if cost == (econ.CostModel{}) {
		cost = econ.Residential2018()
	}
	fin := ec.Financials
	if fin == (econ.Financials{}) {
		fin = econ.TurinFeedIn2018()
	}
	catalog := ec.Catalog
	if len(catalog) == 0 {
		catalog = DefaultPanelCatalog()
	}
	rankBy, err := ParseRankBy(string(ec.RankBy))
	if err != nil {
		return cost, fin, nil, rankBy, err
	}
	if err := cost.Validate(); err != nil {
		return cost, fin, nil, rankBy, err
	}
	if err := fin.Validate(); err != nil {
		return cost, fin, nil, rankBy, err
	}
	if ec.BudgetUSD < 0 {
		return cost, fin, nil, rankBy, fmt.Errorf("pvfloor: negative budget $%g", ec.BudgetUSD)
	}
	for i, pc := range catalog {
		if pc.Name == "" {
			return cost, fin, nil, rankBy, fmt.Errorf("pvfloor: panel class %d unnamed", i)
		}
		if pc.WattsSTC <= 0 {
			return cost, fin, nil, rankBy, fmt.Errorf("pvfloor: panel class %q nameplate %g W", pc.Name, pc.WattsSTC)
		}
		if pc.ModuleUSD < 0 {
			return cost, fin, nil, rankBy, fmt.Errorf("pvfloor: panel class %q price $%g", pc.Name, pc.ModuleUSD)
		}
	}
	return cost, fin, catalog, rankBy, nil
}

// Validate reports whether the config can run, without running it —
// request surfaces use it to fail fast before streaming starts.
func (ec EconConfig) Validate() error {
	if !ec.Enabled {
		return nil
	}
	_, _, _, _, err := ec.resolved()
	return err
}

// EconReport is the per-roof economics row of a district/city report:
// the selected panel class priced through internal/econ. PaybackYears
// and LCOEUSDPerKWh are nil when the roof never pays back / never
// produces (the +Inf sentinels, which raw encoding/json rejects).
type EconReport struct {
	// PanelClass names the selected catalog class.
	PanelClass string `json:"panel_class"`
	// NameplateKW is the array nameplate under that class.
	NameplateKW float64 `json:"nameplate_kw"`
	// EnergyMWh is the class-scaled annual net energy.
	EnergyMWh float64 `json:"energy_mwh"`
	// CapexUSD / AnnualRevenueUSD / NPVUSD price the system.
	CapexUSD         float64 `json:"capex_usd"`
	AnnualRevenueUSD float64 `json:"annual_revenue_usd"`
	NPVUSD           float64 `json:"npv_usd"`
	// NPVPerUSD is the marginal value density (NPV per capex dollar)
	// — the greedy budget admission's ranking key.
	NPVPerUSD float64 `json:"npv_per_usd"`
	// PaybackYears is the simple payback (nil = never pays back).
	PaybackYears *float64 `json:"payback_years"`
	// LCOEUSDPerKWh is the levelised cost of energy (nil = zero
	// production).
	LCOEUSDPerKWh *float64 `json:"lcoe_usd_per_kwh"`
	// MarginalNPVGainUSD / MarginalPaybackYears price the sparse-vs-
	// compact decision for this roof (the paper's iso-cost claim):
	// lifetime NPV of choosing the proposed placement over the
	// traditional one, and how long the extra cable takes to pay for
	// itself (nil = never). Absent when the baseline was skipped.
	MarginalNPVGainUSD   float64  `json:"marginal_npv_gain_usd,omitempty"`
	MarginalPaybackYears *float64 `json:"marginal_payback_years,omitempty"`
	// Admitted reports whether the roof made the fleet: always true
	// without a budget, the greedy knapsack's verdict with one.
	Admitted bool `json:"admitted"`
}

// FleetEcon summarises the economics pass over a district/city run.
type FleetEcon struct {
	// RankBy echoes the resolved ranking objective.
	RankBy RankBy
	// BudgetUSD echoes the cap (0 = unbounded).
	BudgetUSD float64
	// RoofsAdmitted counts the admitted roofs.
	RoofsAdmitted int
	// TotalCapexUSD / TotalNPVUSD / TotalAnnualRevenueUSD sum over
	// the admitted roofs.
	TotalCapexUSD         float64
	TotalNPVUSD           float64
	TotalAnnualRevenueUSD float64
}

// fleetTotals is the econ pass's replacement aggregate: the new
// ranking plus energy totals over the admitted subset.
type fleetTotals struct {
	ranked                      []int
	fleet                       *FleetEcon
	proposedMWh, traditionalMWh float64
	wiringM                     float64
}

// assessRoof prices one planned roof across the catalog and returns
// the NPV-maximising class (ties keep the earlier catalog entry).
func assessRoof(o PlanOutcome, modules int, cost econ.CostModel, fin econ.Financials, catalog []PanelClass) (*EconReport, error) {
	var best *EconReport
	var bestScale float64
	for _, pc := range catalog {
		scale := pc.WattsSTC / simulatedModuleWatts
		c := cost
		if pc.ModuleUSD > 0 {
			c.ModuleUSD = pc.ModuleUSD
		}
		nameplateKW := float64(modules) * pc.WattsSTC / 1000
		a, err := econ.Assess(o.ProposedMWh*scale, modules, nameplateKW, o.WiringExtraM, c, fin)
		if err != nil {
			return nil, fmt.Errorf("class %s: %w", pc.Name, err)
		}
		rep := &EconReport{
			PanelClass:       pc.Name,
			NameplateKW:      nameplateKW,
			EnergyMWh:        o.ProposedMWh * scale,
			CapexUSD:         a.CapexUSD,
			AnnualRevenueUSD: a.AnnualRevenueUSD,
			NPVUSD:           a.NPVUSD,
			PaybackYears:     econ.FinitePtr(a.SimplePaybackYears),
			LCOEUSDPerKWh:    econ.FinitePtr(a.LCOEUSDPerKWh),
		}
		if a.CapexUSD > 0 {
			rep.NPVPerUSD = a.NPVUSD / a.CapexUSD
		}
		if best == nil || rep.NPVUSD > best.NPVUSD {
			best, bestScale = rep, scale
		}
	}
	if o.TraditionalMWh > 0 {
		m, err := econ.CompareMarginal(o.TraditionalMWh*bestScale, o.ProposedMWh*bestScale,
			o.WiringExtraM, cost, fin)
		if err != nil {
			return nil, err
		}
		best.MarginalNPVGainUSD = m.LifetimeNPVGainUSD
		best.MarginalPaybackYears = econ.FinitePtr(m.PaybackYears)
	}
	return best, nil
}

// assessFleet runs the economics pass over a fleet of roof plans:
// price every planned roof (selecting its panel class), admit against
// the budget, re-rank per the objective, and total the admitted
// subset. It reads only flattened PlanOutcomes and Modules, so live
// and checkpoint-restored plans price identically, and it is
// idempotent — re-running it on the same plans reproduces the same
// ranking and totals.
func (ec EconConfig) assessFleet(plans []*RoofPlan) (fleetTotals, error) {
	cost, fin, catalog, rankBy, err := ec.resolved()
	if err != nil {
		return fleetTotals{}, err
	}

	var planned []int
	for i, rp := range plans {
		rp.Econ = nil
		if !rp.Planned() || rp.Modules <= 0 {
			continue
		}
		rep, err := assessRoof(rp.Outcome(), rp.Modules, cost, fin, catalog)
		if err != nil {
			return fleetTotals{}, fmt.Errorf("pvfloor: econ roof %d: %w", rp.Roof.ID, err)
		}
		rp.Econ = rep
		planned = append(planned, i)
	}

	// Sequential greedy admission: walk the planned roofs in
	// descending marginal-NPV-per-dollar order (ties by plan index)
	// and admit every positive-NPV roof whose capex still fits —
	// roofs too expensive for the remaining budget are skipped, not
	// terminal, so the budget fills as tightly as the greedy order
	// allows. Without a budget every planned roof is admitted.
	if ec.BudgetUSD > 0 {
		order := append([]int(nil), planned...)
		sort.SliceStable(order, func(a, b int) bool {
			da, db := plans[order[a]].Econ.NPVPerUSD, plans[order[b]].Econ.NPVPerUSD
			if da != db {
				return da > db
			}
			return order[a] < order[b]
		})
		remaining := ec.BudgetUSD
		for _, i := range order {
			e := plans[i].Econ
			if e.NPVUSD <= 0 || e.CapexUSD > remaining {
				continue
			}
			e.Admitted = true
			remaining -= e.CapexUSD
		}
	} else {
		for _, i := range planned {
			plans[i].Econ.Admitted = true
		}
	}

	ft := fleetTotals{
		fleet: &FleetEcon{RankBy: rankBy, BudgetUSD: ec.BudgetUSD},
	}
	for _, i := range planned {
		e := plans[i].Econ
		if !e.Admitted {
			continue
		}
		o := plans[i].Outcome()
		ft.ranked = append(ft.ranked, i)
		ft.proposedMWh += o.ProposedMWh
		ft.traditionalMWh += o.TraditionalMWh
		ft.wiringM += o.WiringExtraM
		ft.fleet.RoofsAdmitted++
		ft.fleet.TotalCapexUSD += e.CapexUSD
		ft.fleet.TotalNPVUSD += e.NPVUSD
		ft.fleet.TotalAnnualRevenueUSD += e.AnnualRevenueUSD
	}
	sort.SliceStable(ft.ranked, func(a, b int) bool {
		ia, ib := ft.ranked[a], ft.ranked[b]
		switch rankBy {
		case RankByNPV:
			na, nb := plans[ia].Econ.NPVUSD, plans[ib].Econ.NPVUSD
			if na != nb {
				return na > nb
			}
		case RankByPayback:
			pa, pb := plans[ia].Econ.PaybackYears, plans[ib].Econ.PaybackYears
			// nil = never pays back = worst.
			switch {
			case pa == nil && pb == nil:
			case pa == nil:
				return false
			case pb == nil:
				return true
			case *pa != *pb:
				return *pa < *pb
			}
		default: // RankByEnergy — today's comparator, bit-identical.
			ea, eb := plans[ia].Outcome().ProposedMWh, plans[ib].Outcome().ProposedMWh
			if ea != eb {
				return ea > eb
			}
		}
		return ia < ib
	})
	return ft, nil
}

// applyEconomics runs the fleet economics pass over a district result,
// replacing its ranking and totals with the admitted subset's.
func (dr *DistrictResult) applyEconomics(ec EconConfig) error {
	plans := make([]*RoofPlan, len(dr.Plans))
	for i := range dr.Plans {
		plans[i] = &dr.Plans[i]
	}
	ft, err := ec.assessFleet(plans)
	if err != nil {
		return err
	}
	dr.Ranked = ft.ranked
	dr.Econ = ft.fleet
	dr.TotalProposedMWh = ft.proposedMWh
	dr.TotalTraditionalMWh = ft.traditionalMWh
	dr.TotalWiringExtraM = ft.wiringM
	return nil
}

// applyEconomics runs the fleet economics pass over a stitched city
// result — after stitching, so live and checkpoint-restored tiles
// price through the identical code path and the budget spans the
// whole city, not each tile.
func (cr *CityResult) applyEconomics(ec EconConfig) error {
	plans := make([]*RoofPlan, len(cr.Plans))
	for i := range cr.Plans {
		plans[i] = &cr.Plans[i].RoofPlan
	}
	ft, err := ec.assessFleet(plans)
	if err != nil {
		return err
	}
	cr.Ranked = ft.ranked
	cr.Econ = ft.fleet
	cr.TotalProposedMWh = ft.proposedMWh
	cr.TotalTraditionalMWh = ft.traditionalMWh
	cr.TotalWiringExtraM = ft.wiringM
	return nil
}

// econTable renders the admitted fleet's economics as a ranked table
// plus the fleet summary line — appended to the district/city table
// when the pass ran.
func econTable(plans []*RoofPlan, ranked []int, fleet *FleetEcon) string {
	tbl := report.NewTable("Rank", "Roof", "Class", "kW", "Capex $", "NPV $", "NPV/$", "Payback yr", "LCOE $/kWh")
	fmtOrNever := func(p *float64, format string) string {
		if p == nil {
			return "never"
		}
		return fmt.Sprintf(format, *p)
	}
	for rank, pi := range ranked {
		rp := plans[pi]
		if rp.Econ == nil {
			continue
		}
		e := rp.Econ
		tbl.AddRow(fmt.Sprint(rank+1), fmt.Sprintf("roof%02d", rp.Roof.ID), e.PanelClass,
			fmt.Sprintf("%.2f", e.NameplateKW),
			fmt.Sprintf("%.0f", e.CapexUSD),
			fmt.Sprintf("%.0f", e.NPVUSD),
			fmt.Sprintf("%.3f", e.NPVPerUSD),
			fmtOrNever(e.PaybackYears, "%.1f"),
			fmtOrNever(e.LCOEUSDPerKWh, "%.3f"))
	}
	out := "\n" + tbl.String()
	out += fmt.Sprintf("Fleet economics (%s ranking", fleet.RankBy)
	if fleet.BudgetUSD > 0 {
		out += fmt.Sprintf(", budget $%.0f", fleet.BudgetUSD)
	}
	out += fmt.Sprintf("): %d roofs admitted, capex $%.0f, NPV $%.0f, revenue $%.0f/yr\n",
		fleet.RoofsAdmitted, fleet.TotalCapexUSD, fleet.TotalNPVUSD, fleet.TotalAnnualRevenueUSD)
	return out
}
