package pvfloor

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fieldcache"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/solar/field"
)

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Concurrency bounds how many runs execute simultaneously
	// (0 = one per CPU). Field construction for a group of runs that
	// share a scenario and calendar happens once, inside whichever
	// run gets there first; the other runs of the group wait for it
	// instead of duplicating the work.
	Concurrency int
	// FieldWorkers bounds the solar-field engine's concurrency for
	// every group's shared field construction and memoized
	// statistics pass, superseding the per-run Config.Workers: a
	// shared field cannot honour conflicting per-run settings, and
	// which run would otherwise win the build race is
	// nondeterministic. 0 = one worker per CPU; results are
	// identical for every value.
	FieldWorkers int
	// Context, when non-nil, bounds the whole batch: once it is
	// cancelled no further run starts — runs already executing finish
	// normally (a run is never interrupted mid-physics), every run
	// not yet started is recorded with Err = Context.Err(), and
	// RunBatch returns as soon as the in-flight runs drain. The
	// returned slice still has len(cfgs) entries.
	Context context.Context
	// Progress, when non-nil, is invoked once per run as it finishes
	// (success, failure or cancellation), with the completed
	// BatchRun. Calls come concurrently from the pool workers, in
	// completion order — the callback must be safe for concurrent
	// use and should return quickly (it runs on the pool's critical
	// path). Runs abandoned wholesale after cancellation are still
	// reported, from the dispatching goroutine.
	Progress func(BatchRun)
}

// BatchRun is the structured outcome of one run in a batch. Exactly
// one of Result/Err is meaningful: Err == nil implies Result != nil.
type BatchRun struct {
	// Index is the position of the run's Config in the RunBatch
	// input slice (results are returned in input order).
	Index int
	// Name labels the run: Config.Label when set, otherwise a
	// derived "Roof 2/N=32"-style name.
	Name string
	// Config echoes the input.
	Config Config
	// Result is the full pipeline outcome (nil if the run failed).
	Result *Result
	// Err records the run's failure, if any.
	Err error
	// Elapsed is the wall-clock duration of the run. For the run
	// that builds its group's solar field this includes the
	// construction; for the other runs of the group it includes any
	// time spent waiting for that shared build, so summing Elapsed
	// across runs overcounts actual work.
	Elapsed time.Duration
	// FieldBuilt reports whether this run successfully constructed
	// its group's solar field (false = reused one built by another
	// run, or the build failed).
	FieldBuilt bool
}

// fieldGroup shares one constructed solar field among all runs that
// agree on scenario, horizon fidelity and calendar.
type fieldGroup struct {
	once    sync.Once
	workers int // BatchOptions.FieldWorkers, fixed at batch start
	ev      *field.Evaluator
	err     error
	built   int32 // index of the run that performed the build
}

// groupKey identifies a shareable field: same scenario object, same
// horizon fidelity, a calendar with the same fingerprint (two Grid
// instances enumerating identical instants share), and the same
// artifact cache directory.
type groupKey struct {
	sc       *scenario.Scenario
	fast     bool
	grid     string
	cacheDir string
	cache    *fieldcache.Cache
}

// RunBatch executes many pipeline configurations concurrently — the
// fleet-of-roofs entry point. Runs fan out on a bounded pool
// (BatchOptions.Concurrency); runs that share a scenario and calendar
// share one solar field via the RunWithField amortisation, so a sweep
// of module counts, planner options or optimizer strategies
// (Config.Optimizer) over one roof pays for the field construction
// and the per-cell statistics pass exactly once. With Config.CacheDir
// set, both are additionally served from the persistent artifact
// cache, so a re-run of the whole batch over unchanged roofs skips
// horizon construction and the statistics pass entirely — across
// processes, not just within one.
//
// Per-run failures do not abort the batch: they are recorded in the
// corresponding BatchRun.Err and the remaining runs proceed. The
// returned slice always has len(cfgs) entries, in input order.
// RunBatch itself errors only on an empty batch — cancellation via
// BatchOptions.Context is likewise reported per run, so callers that
// need to distinguish it check their context (or the runs' Errs)
// after RunBatch returns.
func RunBatch(cfgs []Config, opts BatchOptions) ([]BatchRun, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("pvfloor: empty batch")
	}
	// Pre-size the group table serially so the hot phase only reads
	// the map.
	groups := make(map[groupKey]*fieldGroup)
	keys := make([]groupKey, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Scenario == nil {
			continue
		}
		k := groupKey{
			sc:       cfg.Scenario,
			fast:     cfg.Fidelity != Full,
			grid:     cfg.effectiveGrid().Fingerprint(),
			cacheDir: cfg.CacheDir,
			cache:    cfg.Cache,
		}
		keys[i] = k
		if _, ok := groups[k]; !ok {
			groups[k] = &fieldGroup{built: -1, workers: opts.FieldWorkers}
		}
	}

	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	runs := make([]BatchRun, len(cfgs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				// A cancelled batch stops launching work, but the
				// record for every run is still filled in.
				if err := ctx.Err(); err != nil {
					runs[i] = cancelledRun(i, cfgs[i], err)
				} else {
					runs[i] = runOne(i, cfgs[i], groups[keys[i]])
				}
				if opts.Progress != nil {
					opts.Progress(runs[i])
				}
			}
		}()
	}
dispatch:
	for i := range cfgs {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			// The runs never handed to a worker are recorded here;
			// runs already dispatched drain through the pool above.
			for j := i; j < len(cfgs); j++ {
				runs[j] = cancelledRun(j, cfgs[j], ctx.Err())
				if opts.Progress != nil {
					opts.Progress(runs[j])
				}
			}
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()
	return runs, nil
}

// cancelledRun records a batch entry abandoned by context
// cancellation before it started.
func cancelledRun(i int, cfg Config, cause error) BatchRun {
	return BatchRun{
		Index:  i,
		Name:   batchName(cfg),
		Config: cfg,
		Err:    fmt.Errorf("pvfloor: batch run %d (%s): %w", i, batchName(cfg), cause),
	}
}

// runOne executes one batch entry against its (possibly shared) field
// group.
func runOne(i int, cfg Config, g *fieldGroup) BatchRun {
	start := time.Now()
	br := BatchRun{Index: i, Name: batchName(cfg), Config: cfg}
	if cfg.Scenario == nil {
		br.Err = fmt.Errorf("pvfloor: batch run %d: nil scenario", i)
		br.Elapsed = time.Since(start)
		return br
	}
	g.once.Do(func() {
		g.built = int32(i)
		g.ev, g.err = cfg.Scenario.FieldWith(scenario.FieldConfig{
			Grid:     cfg.effectiveGrid(),
			Fast:     cfg.Fidelity != Full,
			Workers:  g.workers,
			CacheDir: cfg.CacheDir,
			Cache:    cfg.Cache,
		})
	})
	br.FieldBuilt = g.built == int32(i) && g.err == nil
	if g.err != nil {
		br.Err = fmt.Errorf("pvfloor: batch run %d (%s): field: %w", i, br.Name, g.err)
		br.Elapsed = time.Since(start)
		return br
	}
	br.Result, br.Err = RunWithField(cfg, g.ev)
	br.Elapsed = time.Since(start)
	return br
}

// Name returns the display name batch results carry for this config:
// Label when set, otherwise a derived "Roof 2/N=32"-style name (plus
// optimizer-strategy and fidelity tags when non-default).
func (cfg Config) Name() string { return batchName(cfg) }

// batchName derives the display name of a batch entry.
func batchName(cfg Config) string {
	if cfg.Label != "" {
		return cfg.Label
	}
	if cfg.Scenario == nil {
		return "(nil scenario)"
	}
	name := fmt.Sprintf("%s/N=%d", cfg.Scenario.Name, cfg.Modules)
	if tag := cfg.Optimizer.label(); tag != "" {
		name += "/" + tag
	}
	if cfg.Fidelity == Full {
		name += "/full"
	}
	return name
}

// BatchTableI formats the successful runs of a batch as the paper's
// Table I, in input order. Failed runs are skipped (inspect their
// BatchRun.Err separately).
func BatchTableI(runs []BatchRun) string {
	rows := make([]report.TableIRow, 0, len(runs))
	for _, br := range runs {
		if br.Err != nil || br.Result == nil {
			continue
		}
		row := br.Result.TableIRow()
		if br.Config.Label != "" {
			row.Roof = br.Config.Label
		} else if tag := br.Config.Optimizer.label(); tag != "" {
			row.Roof += "/" + tag
		}
		rows = append(rows, row)
	}
	return report.FormatTableI(rows)
}
