// Package pvfloor is the public facade of the GIS-based PV
// floorplanning library — a from-scratch Go reproduction of
//
//	S. Vinco, L. Bottaccioli, E. Patti, A. Acquaviva, E. Macii,
//	M. Poncino, "GIS-Based Optimal Photovoltaic Panel Floorplanning
//	for Residential Installations", DATE 2018.
//
// The facade wires the full pipeline together: a (synthetic) DSM
// scene with its suitable area, the year-long solar-field simulation
// (sun position → clear sky → weather → decomposition → transposition
// → horizon shadows), the per-cell suitability statistics, the greedy
// sparse floorplanner and the traditional compact baseline, and the
// topology-aware energy evaluation with wiring overhead.
//
//	sc, _ := pvfloor.Roof2()
//	res, _ := pvfloor.Run(pvfloor.Config{Scenario: sc, Modules: 32})
//	fmt.Printf("traditional %.2f MWh, proposed %.2f MWh (%+.1f%%)\n",
//	    res.TraditionalEval.NetMWh(), res.ProposedEval.NetMWh(),
//	    res.ImprovementPct())
//
// Lower-level building blocks live in internal/ packages; everything
// needed to reproduce the paper's tables and figures is reachable
// from this package, the examples/ programs and the cmd/ tools.
package pvfloor

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/pvmodel"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/solar/field"
	"repro/internal/timegrid"
	"repro/internal/wiring"
)

// Re-exported scenario constructors (the paper's §V-A roofs plus the
// residential title scenario).
var (
	Roof1       = scenario.Roof1
	Roof2       = scenario.Roof2
	Roof3       = scenario.Roof3
	Residential = scenario.Residential
	AllRoofs    = scenario.All
)

// Fidelity selects the simulation accuracy/runtime trade-off.
type Fidelity int

const (
	// Fast uses the reduced calendar (hourly, ~monthly day stride)
	// and coarse horizon maps: seconds per roof, suitable for tests
	// and exploration.
	Fast Fidelity = iota
	// Full uses the paper's setup: a full year at 15-minute steps
	// and fine horizon maps. Minutes per roof.
	Full
)

// Config parameterises one end-to-end pipeline run.
type Config struct {
	// Scenario is the roof to plan on (required).
	Scenario *scenario.Scenario
	// Modules is the number of PV modules N (must be a multiple of
	// the paper's string length 8 unless Plan.Topology is set
	// explicitly).
	Modules int
	// Fidelity selects Fast (default) or Full simulation.
	Fidelity Fidelity
	// Grid overrides the calendar implied by Fidelity.
	Grid *timegrid.Grid
	// Suitability tunes the suitability metric (zero value = paper).
	Suitability floorplan.SuitabilityOptions
	// Plan tunes the greedy planner; Shape and Topology are filled
	// from the scenario and Modules when zero.
	Plan floorplan.Options
	// Module overrides the PV module model (default: the paper's
	// Mitsubishi PV-MF165EB3 empirical model).
	Module pvmodel.Module
	// Wiring overrides the cable assumptions (default: the paper's
	// AWG 10 at 7 mΩ/m, 1 $/m).
	Wiring wiring.Spec
	// SkipBaseline skips the compact reference (saves its sweep when
	// only the proposed placement is wanted).
	SkipBaseline bool
}

// Result carries every artifact of a pipeline run.
type Result struct {
	// Scenario echoes the input.
	Scenario *scenario.Scenario
	// Evaluator is the constructed solar field (reusable for custom
	// evaluations).
	Evaluator *field.Evaluator
	// Stats are the per-cell trace statistics.
	Stats *field.CellStats
	// Suitability is the ranking matrix derived from Stats.
	Suitability *floorplan.Suitability
	// Proposed is the paper's greedy sparse placement.
	Proposed *floorplan.Placement
	// Traditional is the compact baseline (nil with SkipBaseline).
	Traditional *floorplan.Placement
	// ProposedEval / TraditionalEval are the yearly energy reports.
	ProposedEval    floorplan.Evaluation
	TraditionalEval floorplan.Evaluation
}

// ImprovementPct returns the net-energy gain of the proposed
// placement over the traditional baseline, in percent.
func (r *Result) ImprovementPct() float64 {
	t := r.TraditionalEval.NetMWh()
	if t == 0 {
		return 0
	}
	return (r.ProposedEval.NetMWh() - t) / t * 100
}

// TableIRow formats the run as one row of the paper's Table I.
func (r *Result) TableIRow() report.TableIRow {
	return report.TableIRow{
		Roof:           r.Scenario.Name,
		W:              r.Scenario.Suitable.W(),
		L:              r.Scenario.Suitable.H(),
		Ng:             r.Scenario.Ng(),
		N:              r.Proposed.Topology.Modules(),
		TraditionalMWh: r.TraditionalEval.NetMWh(),
		ProposedMWh:    r.ProposedEval.NetMWh(),
		WiringExtraM:   r.ProposedEval.WiringExtraM,
	}
}

// ProposedMap renders the proposed placement as ASCII art in the
// style of the paper's Fig. 7(d-f).
func (r *Result) ProposedMap(maxCols int) string {
	return render.PlacementASCII(r.Scenario.Suitable, r.Proposed, maxCols)
}

// TraditionalMap renders the baseline placement (Fig. 7(a-c)).
func (r *Result) TraditionalMap(maxCols int) string {
	return render.PlacementASCII(r.Scenario.Suitable, r.Traditional, maxCols)
}

// SuitabilityMap renders the suitability matrix as ASCII art in the
// style of the paper's Fig. 6(b).
func (r *Result) SuitabilityMap(maxCols int) string {
	return render.HeatmapASCII(render.Field{
		W: r.Suitability.W, H: r.Suitability.H,
		At: r.Suitability.At,
	}, maxCols)
}

// Run executes the full pipeline.
func Run(cfg Config) (*Result, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("pvfloor: nil scenario")
	}
	grid := cfg.Grid
	if grid == nil {
		if cfg.Fidelity == Full {
			grid = scenario.FullYearGrid()
		} else {
			grid = scenario.FastGrid()
		}
	}
	var ev *field.Evaluator
	var err error
	if cfg.Fidelity == Full {
		ev, err = cfg.Scenario.Field(grid)
	} else {
		ev, err = cfg.Scenario.FieldFast(grid)
	}
	if err != nil {
		return nil, err
	}
	return RunWithField(cfg, ev)
}

// RunWithField executes the planning and evaluation stages against an
// already-built solar field (letting callers amortise field
// construction across many planning runs).
func RunWithField(cfg Config, ev *field.Evaluator) (*Result, error) {
	if cfg.Scenario == nil || ev == nil {
		return nil, fmt.Errorf("pvfloor: nil scenario or field")
	}
	cs, err := ev.Stats()
	if err != nil {
		return nil, err
	}
	suit, err := floorplan.ComputeSuitability(cs, cfg.Suitability)
	if err != nil {
		return nil, err
	}

	planOpts := cfg.Plan
	if planOpts.Shape == (floorplan.ModuleShape{}) {
		planOpts.Shape = cfg.Scenario.Shape
	}
	if planOpts.Topology.Modules() == 0 {
		topo, err := scenario.Topology(cfg.Modules)
		if err != nil {
			return nil, err
		}
		planOpts.Topology = topo
	}
	mod := cfg.Module
	if mod == nil {
		mod = pvmodel.PVMF165EB3()
	}
	spec := cfg.Wiring
	if spec == (wiring.Spec{}) {
		spec = wiring.AWG10(scenario.CellSizeM)
	}

	res := &Result{
		Scenario:    cfg.Scenario,
		Evaluator:   ev,
		Stats:       cs,
		Suitability: suit,
	}
	res.Proposed, err = floorplan.Plan(suit, cfg.Scenario.Suitable, planOpts)
	if err != nil {
		return nil, fmt.Errorf("pvfloor: proposed placement: %w", err)
	}
	res.ProposedEval, err = floorplan.Evaluate(ev, mod, res.Proposed, spec)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipBaseline {
		res.Traditional, err = floorplan.PlanCompact(suit, cfg.Scenario.Suitable, planOpts)
		if err != nil {
			return nil, fmt.Errorf("pvfloor: traditional placement: %w", err)
		}
		res.TraditionalEval, err = floorplan.Evaluate(ev, mod, res.Traditional, spec)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
