// Package pvfloor is the public facade of the GIS-based PV
// floorplanning library — a from-scratch Go reproduction of
//
//	S. Vinco, L. Bottaccioli, E. Patti, A. Acquaviva, E. Macii,
//	M. Poncino, "GIS-Based Optimal Photovoltaic Panel Floorplanning
//	for Residential Installations", DATE 2018.
//
// The facade wires the full pipeline together: a (synthetic) DSM
// scene with its suitable area, the year-long solar-field simulation
// (sun position → clear sky → weather → decomposition → transposition
// → horizon shadows), the per-cell suitability statistics, the greedy
// sparse floorplanner and the traditional compact baseline, and the
// topology-aware energy evaluation with wiring overhead.
//
//	sc, _ := pvfloor.Roof2()
//	res, _ := pvfloor.Run(pvfloor.Config{Scenario: sc, Modules: 32})
//	fmt.Printf("traditional %.2f MWh, proposed %.2f MWh (%+.1f%%)\n",
//	    res.TraditionalEval.NetMWh(), res.ProposedEval.NetMWh(),
//	    res.ImprovementPct())
//
// # Fidelity
//
// Config.Fidelity trades accuracy for runtime. Fast (the default)
// simulates a reduced calendar — hourly steps, one day per ~monthly
// stride, scaled back to annual totals — over a coarse horizon map:
// well under a second per roof, right for tests, exploration and
// interactive sweeps. Full runs the paper's setup — a full year at
// 15-minute steps over fine horizon maps — and costs minutes per
// roof. Both fidelities run the identical physics pipeline; relative
// placement quality agrees between them, absolute MWh differ by the
// sampling density. Config.Grid overrides the calendar when neither
// preset fits.
//
// # Optimizer strategies
//
// Config.Optimizer selects how the proposed placement is searched
// for: the paper's greedy heuristic (the default), a
// simulated-annealing refinement, a parallel multi-start annealer, or
// the exact branch-and-bound reference on reduced instances. All
// strategies optimise one shared objective with O(1)-per-move
// incremental evaluation (see internal/objective), and all are
// deterministic — multistart returns a bit-identical placement for
// every SearchWorkers value.
//
//	res, _ := pvfloor.Run(pvfloor.Config{
//	    Scenario:  sc,
//	    Modules:   32,
//	    Optimizer: pvfloor.OptimizerConfig{Strategy: pvfloor.StrategyMultiStart, Restarts: 8},
//	})
//
// # Concurrency
//
// The solar-field engine underneath Run is parallel by default and
// deterministic for every worker count (see internal/solar/field).
// Config.Workers bounds its worker pool: 0 uses one worker per CPU,
// 1 forces the serial reference path — useful when embedding runs in
// an outer parallel harness. For simulating fleets of roofs, prefer
// RunBatch (or the cmd/pvbatch tool) over looping on Run: it fans
// whole scenarios out concurrently and amortises both field
// construction and the statistics pass across the config variants of
// each roof (within a batch, the shared engine runs with
// BatchOptions.FieldWorkers rather than per-run Workers — a shared
// field cannot honour conflicting per-run settings).
//
// For long-lived callers — services, pipelines, TUIs — RunBatch and
// RunDistrict accept a context (cancellation stops the fan-out
// between runs; the physics is never interrupted mid-run) and a
// progress callback delivering per-run completions and per-roof
// district milestones as they happen. Both hooks are observational:
// results are bit-identical with or without them. The cmd/pvserve
// tool builds the streaming HTTP front-end on exactly these hooks.
//
// Lower-level building blocks live in internal/ packages; everything
// needed to reproduce the paper's tables and figures is reachable
// from this package, the examples/ programs and the cmd/ tools.
package pvfloor

import (
	"fmt"

	"repro/internal/fieldcache"
	"repro/internal/floorplan"
	"repro/internal/optimize"
	"repro/internal/pvmodel"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/solar/field"
	"repro/internal/timegrid"
	"repro/internal/wiring"
)

// Re-exported scenario constructors (the paper's §V-A roofs plus the
// residential title scenario).
var (
	Roof1       = scenario.Roof1
	Roof2       = scenario.Roof2
	Roof3       = scenario.Roof3
	Residential = scenario.Residential
	AllRoofs    = scenario.All
)

// Fidelity selects the simulation accuracy/runtime trade-off.
type Fidelity int

const (
	// Fast uses the reduced calendar (hourly, ~monthly day stride)
	// and coarse horizon maps: seconds per roof, suitable for tests
	// and exploration.
	Fast Fidelity = iota
	// Full uses the paper's setup: a full year at 15-minute steps
	// and fine horizon maps. Minutes per roof.
	Full
)

// Config parameterises one end-to-end pipeline run.
type Config struct {
	// Scenario is the roof to plan on (required).
	Scenario *scenario.Scenario
	// Label optionally names the run in batch results and reports
	// (RunBatch derives "Roof 2/N=32"-style names when empty).
	Label string
	// Modules is the number of PV modules N (must be a multiple of
	// the paper's string length 8 unless Plan.Topology is set
	// explicitly).
	Modules int
	// Fidelity selects Fast (default) or Full simulation.
	Fidelity Fidelity
	// Grid overrides the calendar implied by Fidelity.
	Grid *timegrid.Grid
	// Suitability tunes the suitability metric (zero value = paper).
	Suitability floorplan.SuitabilityOptions
	// Plan tunes the greedy planner; Shape and Topology are filled
	// from the scenario and Modules when zero.
	Plan floorplan.Options
	// Module overrides the PV module model (default: the paper's
	// Mitsubishi PV-MF165EB3 empirical model).
	Module pvmodel.Module
	// Wiring overrides the cable assumptions (default: the paper's
	// AWG 10 at 7 mΩ/m, 1 $/m).
	Wiring wiring.Spec
	// Optimizer selects the placement-search strategy for the
	// proposed placement (zero value = the paper's greedy heuristic).
	// See OptimizerConfig and the Strategy constants.
	Optimizer OptimizerConfig
	// SkipBaseline skips the compact reference (saves its sweep when
	// only the proposed placement is wanted).
	SkipBaseline bool
	// Workers bounds the solar-field engine's concurrency for this
	// run: 0 = one worker per CPU, 1 = serial reference path.
	// Results are identical for every value (see the package
	// documentation's Concurrency section). Within RunBatch, shared
	// field groups use BatchOptions.FieldWorkers instead.
	Workers int
	// CacheDir, when non-empty, enables the persistent field-artifact
	// cache in that directory: horizon maps and per-cell statistics
	// are stored on disk keyed by a fingerprint of everything they
	// depend on (DSM content, roof region, horizon options, calendar,
	// site, turbidity, weather realisation, statistics config), so
	// repeated runs over unchanged roofs — across processes, not just
	// within one — skip horizon construction and the statistics pass.
	// Cached results are bit-identical to cold computation; corrupt
	// cache files are detected and recomputed. Concurrent runs and
	// processes may share one directory.
	CacheDir string
	// Cache, when non-nil, is the artifact cache handle to use
	// directly and takes precedence over CacheDir. A long-lived
	// caller (pvserve) passes one handle to every run so hit/miss
	// metrics aggregate in one place and a configured remote blob
	// tier is shared instead of re-dialled per run.
	Cache *fieldcache.Cache
}

// effectiveGrid returns the simulation calendar the config implies:
// the explicit Grid when set, otherwise the Fidelity preset.
func (cfg Config) effectiveGrid() *timegrid.Grid {
	if cfg.Grid != nil {
		return cfg.Grid
	}
	if cfg.Fidelity == Full {
		return scenario.FullYearGrid()
	}
	return scenario.FastGrid()
}

// Result carries every artifact of a pipeline run.
type Result struct {
	// Scenario echoes the input.
	Scenario *scenario.Scenario
	// Evaluator is the constructed solar field (reusable for custom
	// evaluations).
	Evaluator *field.Evaluator
	// Stats are the per-cell trace statistics.
	Stats *field.CellStats
	// Suitability is the ranking matrix derived from Stats.
	Suitability *floorplan.Suitability
	// Proposed is the paper's greedy sparse placement.
	Proposed *floorplan.Placement
	// Traditional is the compact baseline (nil with SkipBaseline).
	Traditional *floorplan.Placement
	// ProposedEval / TraditionalEval are the yearly energy reports.
	ProposedEval    floorplan.Evaluation
	TraditionalEval floorplan.Evaluation
}

// ImprovementPct returns the net-energy gain of the proposed
// placement over the traditional baseline, in percent.
func (r *Result) ImprovementPct() float64 {
	t := r.TraditionalEval.NetMWh()
	if t == 0 {
		return 0
	}
	return (r.ProposedEval.NetMWh() - t) / t * 100
}

// TableIRow formats the run as one row of the paper's Table I.
func (r *Result) TableIRow() report.TableIRow {
	return report.TableIRow{
		Roof:           r.Scenario.Name,
		W:              r.Scenario.Suitable.W(),
		L:              r.Scenario.Suitable.H(),
		Ng:             r.Scenario.Ng(),
		N:              r.Proposed.Topology.Modules(),
		TraditionalMWh: r.TraditionalEval.NetMWh(),
		ProposedMWh:    r.ProposedEval.NetMWh(),
		WiringExtraM:   r.ProposedEval.WiringExtraM,
	}
}

// ProposedMap renders the proposed placement as ASCII art in the
// style of the paper's Fig. 7(d-f).
func (r *Result) ProposedMap(maxCols int) string {
	return render.PlacementASCII(r.Scenario.Suitable, r.Proposed, maxCols)
}

// TraditionalMap renders the baseline placement (Fig. 7(a-c)).
func (r *Result) TraditionalMap(maxCols int) string {
	return render.PlacementASCII(r.Scenario.Suitable, r.Traditional, maxCols)
}

// SuitabilityMap renders the suitability matrix as ASCII art in the
// style of the paper's Fig. 6(b).
func (r *Result) SuitabilityMap(maxCols int) string {
	return render.HeatmapASCII(render.Field{
		W: r.Suitability.W, H: r.Suitability.H,
		At: r.Suitability.At,
	}, maxCols)
}

// Run executes the full pipeline.
func Run(cfg Config) (*Result, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("pvfloor: nil scenario")
	}
	ev, err := cfg.Scenario.FieldWith(scenario.FieldConfig{
		Grid:     cfg.effectiveGrid(),
		Fast:     cfg.Fidelity != Full,
		Workers:  cfg.Workers,
		CacheDir: cfg.CacheDir,
		Cache:    cfg.Cache,
	})
	if err != nil {
		return nil, err
	}
	return RunWithField(cfg, ev)
}

// RunWithField executes the planning and evaluation stages against an
// already-built solar field (letting callers amortise field
// construction across many planning runs).
func RunWithField(cfg Config, ev *field.Evaluator) (*Result, error) {
	if cfg.Scenario == nil || ev == nil {
		return nil, fmt.Errorf("pvfloor: nil scenario or field")
	}
	// The statistics depend only on the field, so runs sharing one
	// evaluator (a module-count sweep, a batch group) share the
	// memoized pass instead of recomputing it per variant.
	cs, err := ev.CachedStats()
	if err != nil {
		return nil, err
	}
	suit, err := floorplan.ComputeSuitability(cs, cfg.Suitability)
	if err != nil {
		return nil, err
	}

	planOpts := cfg.Plan
	if planOpts.Shape == (floorplan.ModuleShape{}) {
		planOpts.Shape = cfg.Scenario.Shape
	}
	if planOpts.Topology.Modules() == 0 {
		topo, err := scenario.Topology(cfg.Modules)
		if err != nil {
			return nil, err
		}
		planOpts.Topology = topo
	}
	mod := cfg.Module
	if mod == nil {
		mod = pvmodel.PVMF165EB3()
	}
	spec := cfg.Wiring
	if spec == (wiring.Spec{}) {
		spec = wiring.AWG10(scenario.CellSizeM)
	}

	res := &Result{
		Scenario:    cfg.Scenario,
		Evaluator:   ev,
		Stats:       cs,
		Suitability: suit,
	}
	placer, err := cfg.Optimizer.placer()
	if err != nil {
		return nil, err
	}
	res.Proposed, err = placer.Place(optimize.Problem{
		Suit:         suit,
		Mask:         cfg.Scenario.Suitable,
		Opts:         planOpts,
		WiringWeight: cfg.Optimizer.wiringWeight(),
		Spec:         spec,
	})
	if err != nil {
		return nil, fmt.Errorf("pvfloor: proposed placement (%s): %w", placer.Name(), err)
	}
	res.ProposedEval, err = floorplan.Evaluate(ev, mod, res.Proposed, spec)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipBaseline {
		res.Traditional, err = floorplan.PlanCompact(suit, cfg.Scenario.Suitable, planOpts)
		if err != nil {
			return nil, fmt.Errorf("pvfloor: traditional placement: %w", err)
		}
		res.TraditionalEval, err = floorplan.Evaluate(ev, mod, res.Traditional, spec)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
